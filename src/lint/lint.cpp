#include "lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace lubt::lint {
namespace {

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : path) {
    if (c == '/' || c == '\\') {
      if (!cur.empty() && cur != ".") parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty() && cur != ".") parts.push_back(cur);
  return parts;
}

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      lines.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

// Path components relative to the nearest source root, so path-aware rules
// behave identically whether the linter was handed "src/lp", an absolute
// path, or "tools/../src" (as the ctest invocation does).
std::vector<std::string> RelParts(const std::vector<std::string>& parts) {
  for (std::size_t i = parts.size(); i-- > 0;) {
    if (parts[i] == "src") {
      return {parts.begin() + static_cast<std::ptrdiff_t>(i) + 1, parts.end()};
    }
  }
  for (std::size_t i = parts.size(); i-- > 0;) {
    if (parts[i] == "bench" || parts[i] == "tools" || parts[i] == "tests" ||
        parts[i] == "examples") {
      return {parts.begin() + static_cast<std::ptrdiff_t>(i), parts.end()};
    }
  }
  return parts.empty() ? parts
                       : std::vector<std::string>{parts.back()};
}

// line -> rules waived there. A suppression covers its own line and the one
// below it, so both trailing comments and a dedicated comment line above the
// offending statement work.
std::map<int, std::set<std::string>> ParseSuppressions(
    const TokenStream& stream) {
  std::map<int, std::set<std::string>> out;
  for (const Comment& comment : stream.comments) {
    const std::size_t tag = comment.text.find("lubt-lint:");
    if (tag == std::string::npos) continue;
    const std::size_t open = comment.text.find("allow(", tag);
    if (open == std::string::npos) continue;
    const std::size_t close = comment.text.find(')', open);
    if (close == std::string::npos) continue;
    std::string names =
        comment.text.substr(open + 6, close - open - 6);
    std::string cur;
    std::set<std::string>& rules = out[comment.line];
    for (const char c : names + ",") {
      if (c == ',' || c == ' ') {
        if (!cur.empty()) rules.insert(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
  }
  return out;
}

bool IsSuppressed(const std::map<int, std::set<std::string>>& waivers,
                  const Finding& finding) {
  for (const int line : {finding.line, finding.line - 1}) {
    const auto it = waivers.find(line);
    if (it != waivers.end() && it->second.count(finding.rule) != 0) {
      return true;
    }
  }
  return false;
}

void JsonEscape(const std::string& in, std::string* out) {
  for (const char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

bool HasSourceExtension(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

}  // namespace

std::vector<Finding> LintText(std::string_view path, std::string_view text) {
  const TokenStream stream = Tokenize(text);
  const std::vector<std::string> lines = SplitLines(text);

  FileContext ctx;
  ctx.path = std::string(path);
  ctx.parts = SplitPath(ctx.path);
  ctx.rel = RelParts(ctx.parts);
  const std::string name = ctx.parts.empty() ? ctx.path : ctx.parts.back();
  ctx.is_header = name.size() > 2 && (name.ends_with(".h") ||
                                      name.ends_with(".hpp"));
  ctx.lines = &lines;
  ctx.stream = &stream;

  std::vector<Finding> findings;
  for (const Rule& rule : Rules()) {
    rule.run(ctx, &findings);
  }

  const auto waivers = ParseSuppressions(stream);
  std::erase_if(findings, [&](const Finding& finding) {
    return IsSuppressed(waivers, finding);
  });
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

Result<std::vector<Finding>> LintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintText(path, buffer.str());
}

Result<std::vector<Finding>> LintPaths(const std::vector<std::string>& paths,
                                       int* files_scanned) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && HasSourceExtension(it->path())) {
          files.push_back(it->path().string());
        }
      }
      if (ec) {
        return Status::NotFound("cannot walk " + path + ": " + ec.message());
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      return Status::NotFound("no such file or directory: " + path);
    }
  }
  // Directory iteration order is unspecified; sort so reports (and any
  // future per-file caps) are reproducible — the linter obeys its own
  // nondeterminism rule.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> findings;
  for (const std::string& file : files) {
    Result<std::vector<Finding>> one = LintFile(file);
    if (!one.ok()) return one.status();
    findings.insert(findings.end(), one.value().begin(), one.value().end());
  }
  if (files_scanned != nullptr) {
    *files_scanned = static_cast<int>(files.size());
  }
  return findings;
}

std::string FormatText(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& finding : findings) {
    out += finding.file + ":" + std::to_string(finding.line) + ": [" +
           finding.rule + "] " + finding.message + "\n";
  }
  return out;
}

std::string FormatJson(const std::vector<Finding>& findings) {
  std::string out = "{\"version\":1,\"count\":" +
                    std::to_string(findings.size()) + ",\"findings\":[";
  bool first = true;
  for (const Finding& finding : findings) {
    if (!first) out += ",";
    first = false;
    out += "{\"rule\":\"";
    JsonEscape(finding.rule, &out);
    out += "\",\"file\":\"";
    JsonEscape(finding.file, &out);
    out += "\",\"line\":" + std::to_string(finding.line) + ",\"message\":\"";
    JsonEscape(finding.message, &out);
    out += "\"}";
  }
  out += "]}";
  return out;
}

}  // namespace lubt::lint
