// lubt_lint: static enforcement of project contracts the compiler can't see.
//
// The repo rests on contracts that clang/gcc have no concept of — bitwise
// batch determinism, Result<T> access discipline, LUBT_DCHECK_FINITE at the
// solver boundary — and that until now were enforced only dynamically, by
// randomized oracles sampling a sliver of the input space. This library is
// the static leg: a tokenizer (lint/tokenizer.h) plus per-rule scanners
// (lint/rules.cpp) that walk the source tree and fail the build on any
// violation, gated as a zero-findings stage in tools/check.sh and as a
// ctest over the real tree.
//
// Rule catalog (DESIGN.md section 14 documents each in depth):
//   unchecked-result     .value() with no prior .ok()/.has_value() guard
//   nondeterminism       rand()/time()/random_device/pointer-to-int casts
//   unordered-iteration  range-for over unordered_{map,set} (order leaks)
//   float-eq             ==/!= against non-sentinel floating literals
//   finite-boundary      SolveLp/SolveEbf must LUBT_DCHECK_FINITE results
//   include-guard        src/ headers carry canonical LUBT_*_H_ guards
//   using-namespace      no `using namespace` in headers
//   bare-mutex           std::mutex family outside check/mutex.h wrappers
//   serve-raw-io         raw read/write/send/recv in src/serve/ outside the
//                        framing layer (partial-I/O and SIGPIPE hazards)
//
// Suppression: `// lubt-lint: allow(rule)` — or `allow(rule-a, rule-b)` —
// on the offending line or on the line directly above it. Suppressions name
// rules explicitly so a grep for `lubt-lint:` audits every waiver.
//
// Findings are deterministic: sorted by (file, line, rule) and derived only
// from file contents, never from traversal order or wall clock — the linter
// holds itself to the contracts it enforces.

#ifndef LUBT_LINT_LINT_H_
#define LUBT_LINT_LINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "lint/tokenizer.h"
#include "util/status.h"

namespace lubt::lint {

/// One rule violation.
struct Finding {
  std::string rule;
  std::string file;  ///< path as given to the linter
  int line = 0;      ///< 1-based
  std::string message;
};

/// Everything a rule scanner sees about one file.
struct FileContext {
  std::string path;                 ///< path as given
  std::vector<std::string> parts;   ///< path components ("src", "lp", ...)
  bool is_header = false;           ///< .h / .hpp
  const std::vector<std::string>* lines = nullptr;  ///< raw source lines
  const TokenStream* stream = nullptr;

  /// Path components relative to the repo's src/ root: for
  /// ".../src/lp/model.h" this is {"lp", "model.h"}; for paths outside a
  /// src/ directory (bench/, tools/) it is the components from that root.
  std::vector<std::string> rel;
};

/// One registered rule: a stable name (used in suppressions and --list-rules)
/// plus the scanner that appends findings.
struct Rule {
  const char* name;
  const char* summary;
  void (*run)(const FileContext&, std::vector<Finding>*);
};

/// The rule registry, in catalog order. Names are unique.
const std::vector<Rule>& Rules();

/// Lint one in-memory file (the unit-test entry point). `path` drives the
/// path-aware rules (include-guard, bare-mutex exemption) exactly as it
/// would for a real file. Findings come back sorted and suppressed.
std::vector<Finding> LintText(std::string_view path, std::string_view text);

/// Lint one file from disk.
Result<std::vector<Finding>> LintFile(const std::string& path);

/// Lint every C++ source under the given files/directories (recursing into
/// directories in sorted order). Fails on unreadable paths.
Result<std::vector<Finding>> LintPaths(const std::vector<std::string>& paths,
                                       int* files_scanned = nullptr);

/// "file:line: [rule] message" lines, one per finding.
std::string FormatText(const std::vector<Finding>& findings);

/// Machine-readable report: {"version":1,"count":N,"findings":[...]}.
std::string FormatJson(const std::vector<Finding>& findings);

}  // namespace lubt::lint

#endif  // LUBT_LINT_LINT_H_
