// EcoSession checkpoint/restore (eco/checkpoint.h): capture is a plain
// state copy; restore re-wires the instance exactly as Create does and then
// reconstructs the LP model bitwise through BuildWithSteinerPairs instead
// of re-solving. See the header for what is deliberately not serialized.

#include "eco/checkpoint.h"

#include <cmath>
#include <utility>

#include "check/invariants.h"

namespace lubt {

EcoCheckpoint EcoSession::Checkpoint() const {
  EcoCheckpoint ck;
  ck.set = set_;
  ck.bounds = problem_.bounds;
  ck.topo = topo_;
  ck.initial_radius = initial_radius_;
  ck.has_model = form_.has_value();
  ck.scale = form_.has_value() ? form_->Scale() : 1.0;
  ck.pool = pool_;
  ck.lp_valid = lp_valid_;
  ck.needs_rebuild = needs_rebuild_;
  ck.lp_x = lp_x_;
  ck.lp_dual = lp_dual_;
  ck.edge_len = edge_len_;
  ck.last = last_;
  return ck;
}

Result<std::unique_ptr<EcoSession>> EcoSession::Restore(
    EcoCheckpoint checkpoint, EcoOptions options) {
  EcoCheckpoint& ck = checkpoint;
  if (ck.bounds.size() != ck.set.sinks.size()) {
    return Status::InvalidArgument(
        "checkpoint restore: one DelayBounds required per sink");
  }
  // A live session always holds a formulation XOR is parked for rebuild
  // (Create and every edit maintain exactly this pairing), and a parked
  // session never claims a valid solution.
  if (ck.has_model == ck.needs_rebuild) {
    return Status::InvalidArgument(
        "checkpoint restore: has_model must equal !needs_rebuild");
  }
  if (!ck.has_model && ck.lp_valid) {
    return Status::InvalidArgument(
        "checkpoint restore: lp_valid without a model");
  }
  if (!std::isfinite(ck.initial_radius) || ck.initial_radius <= 0.0) {
    return Status::InvalidArgument(
        "checkpoint restore: initial_radius must be positive");
  }

  std::unique_ptr<EcoSession> session(new EcoSession());
  session->set_ = std::move(ck.set);
  session->topo_ = std::move(ck.topo);
  session->opt_ = options;
  session->problem_.topo = &session->topo_;
  session->problem_.sinks = session->set_.sinks;
  session->problem_.source = session->set_.source;
  session->problem_.bounds = std::move(ck.bounds);
  LUBT_RETURN_IF_ERROR(ValidateEbfProblem(session->problem_));
  session->initial_radius_ = ck.initial_radius;

  const std::int32_t m =
      static_cast<std::int32_t>(session->set_.sinks.size());
  for (const std::array<std::int32_t, 2>& pr : ck.pool) {
    if (pr[0] < 0 || pr[1] >= m || pr[0] >= pr[1]) {
      return Status::InvalidArgument(
          "checkpoint restore: Steiner pair out of range");
    }
  }
  session->pool_ = std::move(ck.pool);
  for (const std::array<std::int32_t, 2>& pr : session->pool_) {
    session->pair_seen_.insert(PairKey(pr[0], pr[1]));
  }

  // A parked or just-repaired session legitimately carries edge lengths
  // from the last feasible solve over an older topology (every consumer
  // guards with `lp_valid_ && size == NumNodes`), so arity is only a hard
  // contract while the solution is live.
  if (ck.lp_valid &&
      ck.edge_len.size() !=
          static_cast<std::size_t>(session->topo_.NumNodes())) {
    return Status::InvalidArgument(
        "checkpoint restore: edge_len arity mismatch");
  }
  session->lp_valid_ = ck.lp_valid;
  session->needs_rebuild_ = ck.needs_rebuild;
  session->lp_x_ = std::move(ck.lp_x);
  session->lp_dual_ = std::move(ck.lp_dual);
  session->edge_len_ = std::move(ck.edge_len);
  session->last_ = ck.last;

  if (ck.has_model) {
    if (session->AnyEmptyFoldedWindow()) {
      return Status::InvalidArgument(
          "checkpoint restore: model captured over an empty folded window");
    }
    Result<EbfFormulation> built = EbfFormulation::BuildWithSteinerPairs(
        session->problem_, ck.scale, session->pool_);
    if (!built.ok()) return built.status();
    session->form_.emplace(std::move(built).value());
    if (session->lp_valid_ &&
        static_cast<int>(session->lp_x_.size()) !=
            session->form_->Model().NumCols()) {
      return Status::InvalidArgument(
          "checkpoint restore: primal iterate arity mismatch");
    }
    session->ge_has_hi_.assign(static_cast<std::size_t>(m), 0);
    for (std::int32_t s = 0; s < m; ++s) {
      session->ge_has_hi_[static_cast<std::size_t>(s)] =
          std::isfinite(session->form_->DelayWindowLp(s).hi) ? 1 : 0;
    }
  }
  // ipm_ stays empty: the first post-restore solve re-derives the symbolic
  // factorization, which is bitwise-equivalent to the analysis the live
  // session carried (same pattern graph => same MinDegreeOrder).
  return session;
}

}  // namespace lubt
