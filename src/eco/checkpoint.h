// Checkpointable state of an EcoSession (eco/eco_session.h).
//
// An EcoCheckpoint is a plain-data snapshot of everything a session needs
// to come back *bitwise*: the instance (sinks, source, windows, topology),
// the live formulation's scale and Steiner-row registry, and the solved
// state (primal/dual iterates in LP units, edge lengths in layout units,
// the last solve report). It deliberately excludes two things:
//
//  * the LP model's rows — every row is an exact deterministic function of
//    the captured state (delay rows via DelayWindowLp, Steiner rows via
//    SteinerRowForSinks at the captured scale; eco keeps both invariants by
//    refreshing bounds in place on every edit), so Restore rebuilds them
//    through EbfFormulation::BuildWithSteinerPairs instead of storing them;
//  * the IpmContext symbolic factorization — re-derived on the first
//    post-restore solve. This is bitwise-safe because MinDegreeOrder
//    depends only on the normal-matrix pattern graph, which TryExtend
//    guarantees is unchanged from the analysis the live session carries
//    (DESIGN.md section 15).
//
// The serve layer's codec (serve/checkpoint_codec.h) gives this struct a
// bitwise-faithful text format for spill-to-disk; the session cache uses it
// to survive LRU eviction. tests/checkpoint_test.cpp enforces the
// restored-session ≡ never-evicted-session contract with a randomized
// edit-stream oracle.

#ifndef LUBT_ECO_CHECKPOINT_H_
#define LUBT_ECO_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "ebf/formulation.h"
#include "eco/eco_session.h"
#include "io/sink_set.h"
#include "topo/topology.h"

namespace lubt {

/// A complete, self-contained snapshot of one EcoSession. Solve *options*
/// are not part of the snapshot — the restoring caller supplies them, and
/// the bitwise contract holds only when they match the captured session's
/// (the serve layer gives every session the server-wide options, so this is
/// automatic there).
struct EcoCheckpoint {
  // Instance (layout units).
  SinkSet set;
  std::vector<DelayBounds> bounds;
  Topology topo;
  double initial_radius = 1.0;

  // Formulation registry. `has_model` is false when the session is parked
  // in the infeasible-window rebuild state (no live formulation); `pool`
  // is meaningful either way (parked sessions carry it into the next
  // rebuild). `scale` is the live model's LP scale when has_model.
  bool has_model = false;
  double scale = 1.0;
  std::vector<std::array<std::int32_t, 2>> pool;

  // Solved state. LP-unit vectors are captured bit for bit.
  bool lp_valid = false;
  bool needs_rebuild = false;
  std::vector<double> lp_x;
  std::vector<double> lp_dual;
  std::vector<double> edge_len;  ///< layout units, by node id
  EcoSolveInfo last;
};

}  // namespace lubt

#endif  // LUBT_ECO_CHECKPOINT_H_
