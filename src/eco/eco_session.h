// Incremental ECO engine: warm-started re-solves of one LUBT instance under
// a stream of typed edits (eco/edit_script.h).
//
// An EcoSession owns a solved instance — sink set, delay windows, topology,
// the accumulated LP relaxation, and the interior-point context — and
// re-solves after each edit with maximal reuse (DESIGN.md section 13):
//
//  * the topology is kept and repaired locally: AddSink splices a new leaf
//    next to the nearest existing sink (NN re-attach via topo/nn_merge),
//    RemoveSink splices the leaf and its parent out; moves and bound edits
//    keep it untouched;
//  * every lazy Steiner row whose defining sink pair is untouched by the
//    edit is kept; rows touched by a move get their RHS refreshed in place
//    (exact — the row's support never changes while the topology stands);
//  * re-separation first targets the edit's dirty region — pairs with an
//    edited endpoint, screened through the octant oracle's dirty aggregates
//    (OctantMax::CrossBoundDirty) — and then certifies optimality with full
//    output-sensitive separation passes, so convergence is never declared
//    from a partial view of the pair space;
//  * the interior point warm-starts from the previous primal/dual iterate
//    and reuses the sparse symbolic factorization (IpmContext) whenever the
//    compiled row pattern is unchanged, which is every RHS-only edit.
//
// Correctness contract: after every edit the session's solution matches a
// cold SolveEbf of the edited instance (on the session's repaired topology)
// within LP tolerance. RHS-only edits whose refreshed rows stay strictly
// slack — the active set provably unchanged — take the no-op tier and leave
// the stored solution bitwise untouched. tests/eco_test.cpp enforces both
// with a randomized edit-stream oracle.
//
// Scope: unit edge weights and no zero-length (degree-4 split) edges — the
// repair moves assume every leaf is an ordinary binary-tree sink.
//
// Threading: an EcoSession is thread-confined, not thread-safe. All mutable
// solved state — the primal/dual iterates (lp_x_, lp_dual_), the solved-
// state flag (lp_valid_), and the infeasible-window park flag
// (needs_rebuild_) — is read and written without locks on the assumption
// that exactly one thread drives the session between external
// synchronization points. BatchSolver honours this by giving each job (and
// thus each session) to a single worker for its whole lifetime; lubt_server
// honours it by routing every request for a session through that session's
// Strand (runtime/strand.h), which runs at most one job at a time and
// publishes state between consecutive jobs through the pool queue's mutex.

#ifndef LUBT_ECO_ECO_SESSION_H_
#define LUBT_ECO_ECO_SESSION_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "ebf/solver.h"
#include "eco/edit_script.h"
#include "io/sink_set.h"
#include "io/tree_io.h"
#include "lp/dual_report.h"
#include "lp/interior_point.h"

namespace lubt {

struct EcoCheckpoint;  // eco/checkpoint.h

/// Which reuse tier served one edit, cheapest first.
enum class EcoTier {
  kInitial,     ///< session-creation cold solve
  kNoOp,        ///< active set provably preserved; solution reused bitwise
  kRhsWarm,     ///< bounds refreshed in place + warm-started re-solve
  kStructural,  ///< local topology repair + row re-materialization
  kColdRebuild, ///< full rebuild (recovering from an infeasible-window state)
};

const char* EcoTierName(EcoTier tier);

/// The session's last solved point viewed through its duals, in instance
/// terms (lp/dual_report.h unscales the compiled ge-row duals): one entry
/// per sink delay window and one per live Steiner pool row. `valid` is
/// false when the session holds no solution for the current instance or the
/// stored duals no longer describe the model (e.g. right after a bound flip
/// that changed the compiled pattern); consumers must then fall back to
/// unguided behaviour.
struct EcoDualReport {
  struct SinkDual {
    double lo_dual = 0.0;  ///< d cost / d (delay lower bound), >= 0
    double hi_dual = 0.0;  ///< d cost / d (delay upper bound), <= 0
    bool binding = false;  ///< either side of the window is active
  };
  struct SteinerDual {
    std::array<std::int32_t, 2> pair{};  ///< defining sinks, min first
    double dual = 0.0;                   ///< d cost / d (pair distance), >= 0
    bool binding = false;
  };
  std::vector<SinkDual> sinks;      ///< by sink index
  std::vector<SteinerDual> steiner;  ///< by Steiner pool index
  bool valid = false;
};

/// Outcome of one speculative candidate-topology evaluation
/// (EcoSession::EvaluateCandidateTopology). Holds everything a caller needs
/// to either rank the candidate or commit it warm.
struct EcoTopoEval {
  Status status;                 ///< Ok, or Infeasible/solver failure
  double cost = 0.0;             ///< total wirelength, layout units
  TreeStats stats;               ///< delays of the candidate's solved tree
  std::vector<double> edge_len;  ///< layout units, by candidate node id
  int lp_rows = 0;
  int lp_iterations = 0;
  int lazy_rounds = 0;

  bool ok() const { return status.ok(); }
};

/// Outcome of one edit (or of session creation).
struct EcoSolveInfo {
  Status status;          ///< Ok, or Infeasible for empty feasible regions
  EcoTier tier = EcoTier::kInitial;
  double cost = 0.0;      ///< total wirelength, layout units
  double objective = 0.0; ///< == cost (unit weights)
  TreeStats stats;        ///< delays of the solved tree
  int lp_rows = 0;        ///< rows in the session model after the edit
  int lp_iterations = 0;
  int lazy_rounds = 0;    ///< LP solves spent on this edit
  int rows_added = 0;     ///< Steiner rows appended by separation
  int rows_refreshed = 0; ///< rows whose bounds/RHS were updated in place
  int cold_retries = 0;   ///< warm solves that failed and re-ran cold
  bool warm_started = false;
  bool symbolic_reused = false;
  double seconds = 0.0;

  bool ok() const { return status.ok(); }
};

/// Session knobs. The LP engine is always the interior point (simplex
/// cannot consume warm starts) and the row strategy is always lazy.
struct EcoOptions {
  EbfSolveOptions solve;  ///< strategy/engine fields are overridden
};

/// A solved instance that absorbs edits. Non-copyable and non-movable: the
/// internal formulation holds pointers into the session's own storage.
class EcoSession {
 public:
  /// Build a session over `set` (sinks + optional source), per-sink windows
  /// in layout units, and a topology whose leaves are `set`'s sinks, then
  /// run the initial cold solve. Fails only on malformed input; an
  /// infeasible initial instance yields a session whose Last().status is
  /// kInfeasible (later edits may restore feasibility).
  static Result<std::unique_ptr<EcoSession>> Create(SinkSet set,
                                                    std::vector<DelayBounds> bounds,
                                                    Topology topo,
                                                    EcoOptions options = {});

  EcoSession(const EcoSession&) = delete;
  EcoSession& operator=(const EcoSession&) = delete;

  /// Apply one edit (layout units) and re-solve. Fails without mutating the
  /// instance on malformed edits: bad sink index, NaN/negative windows,
  /// windows with lo > hi, or removing below the topology minimum (2 sinks
  /// free-source, 1 fixed-source). LP infeasibility is not an error — it is
  /// reported through the returned info's status, and the session keeps
  /// accepting edits.
  Result<EcoSolveInfo> Apply(const EcoEdit& edit);

  /// Apply a whole stream; stops at the first malformed edit.
  Result<std::vector<EcoSolveInfo>> ApplyAll(std::span<const EcoEdit> edits);

  const SinkSet& Set() const { return set_; }
  const Topology& Topo() const { return topo_; }
  std::span<const DelayBounds> Bounds() const { return problem_.bounds; }
  /// The current instance; spans and pointers borrow session storage.
  const EbfProblem& Problem() const { return problem_; }
  const EcoOptions& Options() const { return opt_; }
  int NumSinks() const { return static_cast<int>(set_.sinks.size()); }
  /// Radius of the instance the session was created over (the unit the
  /// CLI/batch drivers use for script windows).
  double InitialRadius() const { return initial_radius_; }

  /// Creation/last-edit outcome.
  const EcoSolveInfo& Last() const { return last_; }
  /// True when the stored solution corresponds to the current instance.
  bool Feasible() const { return lp_valid_; }
  /// Edge lengths by node id in layout units (last feasible solve; empty
  /// before one exists).
  std::span<const double> EdgeLengths() const { return edge_len_; }
  int NumLpRows() const;

  /// The solved tree (topology + lengths, no embedding) for persistence.
  TreeSolution Solution() const;

  /// Dual view of the last solved point (see EcoDualReport). Cheap: one
  /// pass over the model rows, no solve.
  EcoDualReport DualReport() const;

  /// Speculatively solve the current instance (same sinks, same windows) on
  /// a *candidate* topology without mutating the session — the evaluation
  /// tier of the topology search (search/topo_optimizer.h). Builds an
  /// evaluation-local formulation, re-materializes the session's accumulated
  /// Steiner pool against the candidate (the pool is a set of sink pairs,
  /// which is topology-independent knowledge), warm-starts from
  /// `warm_edge_len` when given (layout units, indexed by *candidate* node
  /// id — the move kernel maps the session's solved lengths through its
  /// node renaming), and runs the lazy loop to optimality. The candidate
  /// must be a valid topology over this session's sinks in this session's
  /// root mode.
  ///
  /// Thread-safety: const and safe to call concurrently from multiple
  /// workers on one session — it reads only settled solved state and owns
  /// every mutable it touches. The exception to the class's thread-confined
  /// contract is deliberate and narrow: no Apply*/Restore may run
  /// concurrently with evaluations (the topology search interleaves a
  /// parallel evaluation phase with a sequential commit phase).
  EcoTopoEval EvaluateCandidateTopology(
      const Topology& candidate,
      const std::vector<double>* warm_edge_len = nullptr) const;

  /// Commit a replacement topology over the unchanged sink set and windows:
  /// validates, adopts, and re-solves through the structural-repair tier
  /// (formulation rebuild with the Steiner pool carried over, warm-started
  /// from `warm_edge_len` — normally the edge lengths of the winning
  /// EvaluateCandidateTopology call). Fails without mutating the session on
  /// an invalid candidate (wrong sink count, wrong root mode, malformed
  /// tree).
  Result<EcoSolveInfo> ApplyTopologyReplace(
      Topology candidate, const std::vector<double>* warm_edge_len = nullptr);

  /// Snapshot the complete session state (eco/checkpoint.h). The snapshot
  /// is self-contained — copies, not views — so the session may keep
  /// absorbing edits (or be destroyed) afterwards.
  EcoCheckpoint Checkpoint() const;

  /// Rebuild a session from a snapshot, bit for bit: the solved state is
  /// adopted as captured and the LP model is reconstructed exactly (same
  /// rows, same bounds, same scale). The interior-point symbolic analysis
  /// is re-derived on the next solve rather than restored; results are
  /// still bitwise identical to the never-checkpointed session's (only the
  /// EcoSolveInfo::symbolic_reused flag of the first post-restore solve may
  /// differ). `options` must match the captured session's solve options for
  /// the bitwise contract to hold. Fails on malformed/corrupt snapshots
  /// without partial effects.
  static Result<std::unique_ptr<EcoSession>> Restore(EcoCheckpoint checkpoint,
                                                     EcoOptions options = {});

 private:
  EcoSession() = default;

  // One key per normalized sink pair, for pool dedup.
  static std::int64_t PairKey(std::int32_t i, std::int32_t j) {
    return (static_cast<std::int64_t>(i) << 32) | static_cast<std::int64_t>(j);
  }

  // Model row of sink s's delay row (the model has no zero-length rows, so
  // delay rows occupy [0, m) and Steiner row k sits at m + k).
  int DelayRow(std::int32_t s) const { return s; }
  int SteinerRow(std::size_t pool_index) const {
    return NumSinks() + static_cast<int>(pool_index);
  }

  // True when some sink's folded window is empty (lo > hi after the source
  // fold), i.e. the instance is geometrically infeasible. Computed in
  // layout units so it is scale-free.
  bool AnyEmptyFoldedWindow() const;

  // Write sink s's refreshed window into its delay row; tracks the ge-row
  // signature (hi-finiteness) and drops the stored duals + symbolic
  // analysis when the compiled pattern flips.
  void PushDelayWindow(std::int32_t s, EcoSolveInfo* info);

  // Tier-0 test: every row in `rows` (model indices) strictly slack at the
  // stored point under both its current and its pending bounds.
  bool RowsStrictlySlack(std::span<const int> rows,
                         std::span<const double> pending_lo,
                         std::span<const double> pending_hi) const;

  // The session's lazy loop: solve, separate (dirty-first when `dirty` is
  // non-empty, then always certify with full passes), append, repeat.
  Status RunLazyLoop(const std::vector<double>* warm_x,
                     const std::vector<double>* warm_dual,
                     std::span<const std::uint8_t> dirty, EcoSolveInfo* info);

  // Full rebuild of formulation + model from the current instance,
  // re-materializing the Steiner pool against the (possibly repaired)
  // topology, then a re-solve warm-started from `warm_x` (LP units of the
  // *new* scale; nullptr = cold).
  Status RebuildAndSolve(const std::vector<double>* warm_x,
                         EcoSolveInfo* info);

  // Topology repair for add/remove. Rebuilds the arena compactly (the
  // children-precede-parents id invariant does not survive in-place
  // surgery) and fills `warm_edge_len` — a warm edge-length guess in layout
  // units indexed by *new* node id (all zeros when no stored solution
  // exists to project from).
  void RepairTopologyAdd(NodeId attach_leaf, std::int32_t new_sink,
                         std::vector<double>* warm_edge_len);
  void RepairTopologyRemove(std::int32_t removed_sink,
                            std::vector<double>* warm_edge_len);

  Status ApplyRhsEdit(const EcoEdit& edit, EcoSolveInfo* info);
  Status ApplyStructuralEdit(const EcoEdit& edit, EcoSolveInfo* info);

  void FinishSolve(const LpSolution& sol, EcoSolveInfo* info);

  SinkSet set_;
  Topology topo_;
  EcoOptions opt_;
  double initial_radius_ = 1.0;
  EbfProblem problem_;  // sinks span -> set_.sinks; topo -> &topo_
  std::optional<EbfFormulation> form_;
  IpmContext ipm_;

  std::vector<double> lp_x_;     // last primal iterate, LP units
  std::vector<double> lp_dual_;  // last ge duals (compiled order)
  bool lp_valid_ = false;        // solution matches the current instance
  bool needs_rebuild_ = false;   // formulation unusable (empty-window state)
  std::vector<double> edge_len_; // layout units, by node id
  EcoSolveInfo last_;

  // Steiner row registry: pool_[k] is the defining sink pair of model row
  // SteinerRow(k); pair_seen_ dedupes appends.
  std::vector<std::array<std::int32_t, 2>> pool_;
  std::unordered_set<std::int64_t> pair_seen_;
  // Per sink: delay row compiled with a finite upper bound (ge signature).
  std::vector<std::uint8_t> ge_has_hi_;

  // Scratch reused across edits.
  std::vector<std::uint8_t> dirty_scratch_;
  std::vector<std::array<std::int32_t, 2>> pairs_scratch_;
};

/// Cold reference: a from-scratch SolveEbf of the session's current
/// instance on the session's (repaired) topology with the session's solve
/// options — what the oracle tests compare every incremental solve against.
EbfSolveResult ColdReferenceSolve(const EcoSession& session);

}  // namespace lubt

#endif  // LUBT_ECO_ECO_SESSION_H_
