// ECO edit scripts: a typed stream of instance edits for EcoSession.
//
// Text format (one edit per line, '#' comments):
//   move SINK X Y          relocate sink SINK to layout point (X, Y)
//   add X Y LO HI          append a sink at (X, Y) with delay window [LO, HI]
//   remove SINK            delete sink SINK (larger indices shift down by one)
//   bounds SINK LO HI      replace sink SINK's delay window with [LO, HI]
//   shift DLO DHI          add DLO / DHI to every sink's lower / upper bound
//
// Coordinates are layout units. Window values are dimensionless until a
// consumer scales them — the CLI/batch drivers treat them as radius units of
// the *initial* instance (radius = source-to-farthest-sink at session
// creation, matching lubt_cli --lower/--upper) and multiply through
// ScaleEditWindows before handing edits to the session, which always works
// in layout units. `inf` is accepted for HI.

#ifndef LUBT_ECO_EDIT_SCRIPT_H_
#define LUBT_ECO_EDIT_SCRIPT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "geom/point.h"
#include "lp/model.h"
#include "util/status.h"

namespace lubt {

/// The edit vocabulary EcoSession understands.
enum class EcoEditKind {
  kMoveSink,     ///< relocate one sink; topology kept, RHS refreshed
  kAddSink,      ///< append a sink; NN re-attach topology repair
  kRemoveSink,   ///< delete one sink; leaf splice-out topology repair
  kSetBounds,    ///< replace one sink's delay window; pure RHS edit
  kShiftWindow,  ///< shift every sink's delay window; pure RHS edit
};

const char* EcoEditKindName(EcoEditKind kind);

/// One typed edit. Field use by kind:
///   kMoveSink:    sink, point
///   kAddSink:     point, lo, hi
///   kRemoveSink:  sink
///   kSetBounds:   sink, lo, hi
///   kShiftWindow: lo (delta on lower), hi (delta on upper; may be negative)
struct EcoEdit {
  EcoEditKind kind = EcoEditKind::kSetBounds;
  std::int32_t sink = -1;
  Point point{0.0, 0.0};
  double lo = 0.0;
  double hi = kLpInf;
};

/// Parse the text format; fails on malformed lines with a line diagnostic.
Result<std::vector<EcoEdit>> ParseEditScript(const std::string& text);

/// Serialize to the text format (round-trips through ParseEditScript).
std::string FormatEditScript(std::span<const EcoEdit> edits);

/// Load a script from a file path.
Result<std::vector<EcoEdit>> LoadEditScript(const std::string& path);

/// Multiply the window fields (lo/hi, including shift deltas) by `radius`,
/// converting a script written in radius units into the layout units
/// EcoSession consumes. Coordinates are untouched.
EcoEdit ScaleEditWindows(EcoEdit edit, double radius);

}  // namespace lubt

#endif  // LUBT_ECO_EDIT_SCRIPT_H_
