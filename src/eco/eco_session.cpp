#include "eco/eco_session.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "check/invariants.h"
#include "cts/metrics.h"
#include "topo/nn_merge.h"
#include "topo/validate.h"
#include "util/logging.h"
#include "util/timer.h"

namespace lubt {

namespace {

// Tier-0 slack margin in LP (radius-normalized) units. A row this far from
// both of its bounds at a tolerance-1e-8 optimum is non-binding at the exact
// optimum too, so editing its bounds within the still-slack region cannot
// move the optimum: the solution is reused without a solve.
constexpr double kNoOpSlackMargin = 1e-5;

}  // namespace

const char* EcoTierName(EcoTier tier) {
  switch (tier) {
    case EcoTier::kInitial:
      return "initial";
    case EcoTier::kNoOp:
      return "no-op";
    case EcoTier::kRhsWarm:
      return "rhs-warm";
    case EcoTier::kStructural:
      return "structural";
    case EcoTier::kColdRebuild:
      return "cold-rebuild";
  }
  return "unknown";
}

Result<std::unique_ptr<EcoSession>> EcoSession::Create(
    SinkSet set, std::vector<DelayBounds> bounds, Topology topo,
    EcoOptions options) {
  if (bounds.size() != set.sinks.size()) {
    return Status::InvalidArgument("one DelayBounds required per sink");
  }
  std::unique_ptr<EcoSession> session(new EcoSession());
  session->set_ = std::move(set);
  session->topo_ = std::move(topo);
  session->opt_ = options;
  session->problem_.topo = &session->topo_;
  session->problem_.sinks = session->set_.sinks;
  session->problem_.source = session->set_.source;
  session->problem_.bounds = std::move(bounds);

  const Status valid = ValidateEbfProblem(session->problem_);
  if (!valid.ok()) return valid;
  if (!session->problem_.edge_weight.empty() ||
      !session->problem_.zero_length_edges.empty()) {
    return Status::InvalidArgument(
        "eco sessions support unit weights and no zero-length edges");
  }

  const double radius = Radius(session->set_.sinks, session->set_.source);
  session->initial_radius_ = radius > 0.0 ? radius : 1.0;

  Timer timer;
  EcoSolveInfo info;
  info.tier = EcoTier::kInitial;
  if (session->AnyEmptyFoldedWindow()) {
    session->needs_rebuild_ = true;
    info.status = Status::Infeasible(
        "a sink's delay window is emptied by its source distance");
  } else {
    info.status = session->RebuildAndSolve(nullptr, &info);
  }
  info.seconds = timer.Seconds();
  session->last_ = info;
  return session;
}

int EcoSession::NumLpRows() const {
  return form_.has_value() ? form_->Model().NumRows() : 0;
}

TreeSolution EcoSession::Solution() const {
  TreeSolution tree;
  tree.topo = topo_;
  tree.edge_len.assign(edge_len_.begin(), edge_len_.end());
  return tree;
}

EcoDualReport EcoSession::DualReport() const {
  EcoDualReport rep;
  const std::size_t m = set_.sinks.size();
  rep.sinks.resize(m);
  if (!form_.has_value() || !lp_valid_) return rep;

  const auto full = ExtractDualReport(form_->Model(), lp_x_, lp_dual_);
  rep.valid = full.valid;
  for (std::size_t s = 0; s < m; ++s) {
    const RowDuals& d = full.rows[static_cast<std::size_t>(
        DelayRow(static_cast<std::int32_t>(s)))];
    rep.sinks[s].lo_dual = d.lo_dual;
    rep.sinks[s].hi_dual = d.hi_dual;
    rep.sinks[s].binding = d.binding_lo || d.binding_hi;
  }
  rep.steiner.resize(pool_.size());
  for (std::size_t k = 0; k < pool_.size(); ++k) {
    const RowDuals& d = full.rows[static_cast<std::size_t>(SteinerRow(k))];
    rep.steiner[k].pair = pool_[k];
    rep.steiner[k].dual = d.lo_dual;
    rep.steiner[k].binding = d.binding_lo;
  }
  return rep;
}

EcoTopoEval EcoSession::EvaluateCandidateTopology(
    const Topology& candidate, const std::vector<double>* warm_edge_len) const {
  EcoTopoEval out;
  const Status valid = ValidateTopology(candidate, NumSinks());
  if (!valid.ok()) {
    out.status = valid;
    return out;
  }
  if (candidate.Mode() != topo_.Mode()) {
    out.status = Status::InvalidArgument("candidate root mode mismatch");
    return out;
  }
  if (AnyEmptyFoldedWindow()) {
    out.status = Status::Infeasible(
        "a sink's delay window is emptied by its source distance");
    return out;
  }

  // Evaluation-local instance: same sinks/source/windows, candidate tree.
  EbfProblem prob = problem_;
  prob.topo = &candidate;
  Result<EbfFormulation> built =
      EbfFormulation::Build(prob, SteinerRowPolicy::kSeed);
  if (!built.ok()) {
    out.status = built.status();
    return out;
  }
  EbfFormulation form = std::move(built).value();

  // The Steiner pool is a set of *sink pairs* — knowledge about the
  // instance's geometry, not about any particular tree — so every pair the
  // session has ever separated seeds the candidate's model too, saving the
  // lazy loop from rediscovering them.
  std::unordered_set<std::int64_t> seen;
  for (const std::array<std::int32_t, 2>& pr : form.SteinerRowPairs()) {
    seen.insert(PairKey(pr[0], pr[1]));
  }
  LpModel& model = form.MutableModel();
  const std::int32_t m = static_cast<std::int32_t>(set_.sinks.size());
  model.ReserveRows(model.Rows().size() + pool_.size());
  for (const std::array<std::int32_t, 2>& pr : pool_) {
    if (pr[0] < 0 || pr[1] >= m || pr[0] == pr[1]) continue;
    if (seen.count(PairKey(pr[0], pr[1])) != 0) continue;
    const double rhs = form.SteinerRhsLp(pr[0], pr[1]);
    if (!(rhs > 0.0)) continue;
    model.AddRow(form.SteinerRowForSinks(pr[0], pr[1]));
    seen.insert(PairKey(pr[0], pr[1]));
  }

  // Warm primal: the caller's per-candidate-node layout lengths (the move
  // kernel projects the session's solved lengths through its renaming).
  LpWarmStart warm;
  if (warm_edge_len != nullptr) {
    warm.x.assign(static_cast<std::size_t>(model.NumCols()), 0.0);
    for (int col = 0; col < model.NumCols(); ++col) {
      const NodeId v = form.Indexer().NodeOf(col);
      if (static_cast<std::size_t>(v) < warm_edge_len->size()) {
        warm.x[static_cast<std::size_t>(col)] =
            std::max(0.0, (*warm_edge_len)[static_cast<std::size_t>(v)]) /
            form.Scale();
      }
    }
  }

  // Evaluation-local lazy loop: RunLazyLoop's structure with every mutable
  // owned here. Separation and factorization run single-threaded — both are
  // documented worker-count invariant, and evaluations themselves fan out
  // across the optimizer's workers, so inner parallelism would only
  // oversubscribe.
  IpmContext ipm;
  LpSolverOptions lp_opt = opt_.solve.lp;
  lp_opt.engine = LpEngine::kInteriorPoint;
  lp_opt.ipm_context = &ipm;
  lp_opt.factor_jobs = 1;
  const double tol = opt_.solve.separation_tol;
  const int max_rows = opt_.solve.max_rows_per_round;
  const SeparationOptions sep{opt_.solve.separation, 1};
  std::vector<std::array<std::int32_t, 2>> pairs;

  LpSolution sol;
  for (int round = 0; round < opt_.solve.max_lazy_rounds; ++round) {
    lp_opt.warm_start = warm.x.empty() ? nullptr : &warm;
    sol = SolveLp(model, lp_opt);
    ++out.lazy_rounds;
    out.lp_iterations += sol.iterations;
    if (!sol.ok() && lp_opt.warm_start != nullptr) {
      warm.x.clear();
      warm.ge_dual.clear();
      lp_opt.warm_start = nullptr;
      sol = SolveLp(model, lp_opt);
      ++out.lazy_rounds;
      out.lp_iterations += sol.iterations;
    }
    if (!sol.ok()) break;

    std::vector<SparseRow> rows =
        form.FindViolatedSteinerRows(sol.x, tol, max_rows, sep, &pairs);
    std::size_t appended = 0;
    model.ReserveRows(model.Rows().size() + rows.size());
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (!seen.insert(PairKey(pairs[k][0], pairs[k][1])).second) continue;
      model.AddRow(std::move(rows[k]));
      ++appended;
    }
    if (appended == 0) {
      out.status = Status::Ok();
      out.edge_len = form.EdgeLengths(sol.x);
      out.stats = ComputeTreeStats(candidate, out.edge_len);
      out.cost = out.stats.cost;
      out.lp_rows = model.NumRows();
#if LUBT_DCHECK_IS_ON
      const Status post = ValidateEdgeLengths(prob, out.edge_len);
      if (!post.ok()) out.status = post;
#endif
      return out;
    }
    if (lp_opt.warm_start_lazy_rounds &&
        appended * 4 <= static_cast<std::size_t>(model.NumRows())) {
      warm.x = sol.x;
      warm.ge_dual = sol.ge_dual;
    } else {
      warm.x.clear();
      warm.ge_dual.clear();
    }
  }
  out.lp_rows = model.NumRows();
  out.status = sol.ok() ? Status::NumericalFailure(
                              "candidate evaluation did not converge")
                        : sol.status;
  return out;
}

Result<EcoSolveInfo> EcoSession::ApplyTopologyReplace(
    Topology candidate, const std::vector<double>* warm_edge_len) {
  const Status valid = ValidateTopology(candidate, NumSinks());
  if (!valid.ok()) return valid;
  if (candidate.Mode() != topo_.Mode()) {
    return Status::InvalidArgument("replace: root mode mismatch");
  }

  Timer timer;
  EcoSolveInfo info;
  info.tier = EcoTier::kStructural;
  topo_ = std::move(candidate);
  problem_.topo = &topo_;  // unchanged address, kept explicit
  if (AnyEmptyFoldedWindow()) {
    info.status = Status::Infeasible(
        "a sink's delay window is emptied by its source distance");
    needs_rebuild_ = true;
    form_.reset();
    lp_valid_ = false;
  } else {
    info.status = RebuildAndSolve(warm_edge_len, &info);
  }
  info.lp_rows = NumLpRows();
  info.seconds = timer.Seconds();
  last_ = info;
  LUBT_LOG_DEBUG << "eco topo-replace: tier=" << EcoTierName(info.tier)
                 << " status=" << StatusCodeName(info.status.code())
                 << " rounds=" << info.lazy_rounds
                 << " rows+=" << info.rows_added;
  return info;
}

bool EcoSession::AnyEmptyFoldedWindow() const {
  // Layout units, so the test is independent of the session scale.
  for (std::size_t s = 0; s < problem_.bounds.size(); ++s) {
    const DelayBounds& b = problem_.bounds[s];
    if (!std::isfinite(b.hi)) continue;
    double lo = b.lo;
    if (problem_.source.has_value()) {
      lo = std::max(lo, ManhattanDist(*problem_.source, problem_.sinks[s]));
    }
    if (lo > b.hi) return true;
  }
  return false;
}

void EcoSession::PushDelayWindow(std::int32_t s, EcoSolveInfo* info) {
  const EbfFormulation::LpWindow w = form_->DelayWindowLp(s);
  LpModel& model = form_->MutableModel();
  const SparseRow& row = model.Row(DelayRow(s));
  if (row.lo == w.lo && row.hi == w.hi) return;  // bitwise no-change
  model.SetRowBounds(DelayRow(s), w.lo, w.hi);
  ++info->rows_refreshed;
  const std::uint8_t has_hi = std::isfinite(w.hi) ? 1 : 0;
  if (has_hi != ge_has_hi_[static_cast<std::size_t>(s)]) {
    // The compiled ge-row pattern changed shape (a ranged row became
    // single-sided or vice versa): the stored dual prefix and the symbolic
    // analysis no longer describe this model.
    ge_has_hi_[static_cast<std::size_t>(s)] = has_hi;
    lp_dual_.clear();
    ipm_ = IpmContext{};
  }
}

bool EcoSession::RowsStrictlySlack(std::span<const int> rows,
                                   std::span<const double> pending_lo,
                                   std::span<const double> pending_hi) const {
  const LpModel& model = form_->Model();
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const SparseRow& row = model.Row(rows[k]);
    const double act = row.Activity(lp_x_);
    for (const double lo : {row.lo, pending_lo[k]}) {
      if (std::isfinite(lo) && act < lo + kNoOpSlackMargin) return false;
    }
    for (const double hi : {row.hi, pending_hi[k]}) {
      if (std::isfinite(hi) && act > hi - kNoOpSlackMargin) return false;
    }
  }
  return true;
}

void EcoSession::FinishSolve(const LpSolution& sol, EcoSolveInfo* info) {
  lp_x_ = sol.x;
  lp_dual_ = sol.ge_dual;
  lp_valid_ = true;
  edge_len_ = form_->EdgeLengths(lp_x_);
  info->status = Status::Ok();
  info->stats = ComputeTreeStats(topo_, edge_len_);
  info->cost = info->stats.cost;
  info->objective = info->cost;
#if LUBT_DCHECK_IS_ON
  // Debug postcondition, mirroring SolveEbf's gate: an accepted incremental
  // solve must satisfy every constraint of the full edited problem.
  const Status post = ValidateEdgeLengths(problem_, edge_len_);
  if (!post.ok()) {
    info->status = post;
    lp_valid_ = false;
  }
#endif
}

Status EcoSession::RunLazyLoop(const std::vector<double>* warm_x,
                               const std::vector<double>* warm_dual,
                               std::span<const std::uint8_t> dirty,
                               EcoSolveInfo* info) {
  LpModel& model = form_->MutableModel();
  LpSolverOptions lp_opt = opt_.solve.lp;
  lp_opt.engine = LpEngine::kInteriorPoint;  // simplex cannot warm-start
  lp_opt.ipm_context = &ipm_;
  const double tol = opt_.solve.separation_tol;
  const int max_rows = opt_.solve.max_rows_per_round;
  const SeparationOptions sep{opt_.solve.separation,
                              opt_.solve.separation_jobs};

  LpWarmStart warm;
  if (warm_x != nullptr &&
      static_cast<int>(warm_x->size()) == model.NumCols()) {
    warm.x = *warm_x;
    if (warm_dual != nullptr) warm.ge_dual = *warm_dual;
  }
  bool dirty_phase = !dirty.empty();

  LpSolution sol;
  for (int round = 0; round < opt_.solve.max_lazy_rounds; ++round) {
    lp_opt.warm_start = warm.x.empty() ? nullptr : &warm;
    sol = SolveLp(model, lp_opt);
    ++info->lazy_rounds;
    info->lp_iterations += sol.iterations;
    if (!sol.ok() && lp_opt.warm_start != nullptr) {
      // A warm point carried across an edit can (rarely) start the
      // iteration in a bad region; retry the round cold before giving up.
      ++info->cold_retries;
      warm.x.clear();
      warm.ge_dual.clear();
      lp_opt.warm_start = nullptr;
      sol = SolveLp(model, lp_opt);
      ++info->lazy_rounds;
      info->lp_iterations += sol.iterations;
    }
    if (sol.warm_started) info->warm_started = true;
    if (sol.symbolic_reused) info->symbolic_reused = true;
    if (!sol.ok()) break;

    // Separation: the dirty phase searches only pairs touching the edit
    // (octant aggregates restricted via CrossBoundDirty); once it comes
    // back empty the loop switches to full passes permanently, so
    // optimality is only ever certified against the whole pair space.
    std::size_t appended = 0;
    for (int phase = dirty_phase ? 0 : 1; phase < 2 && appended == 0;
         ++phase) {
      std::vector<SparseRow> rows =
          phase == 0 ? form_->FindViolatedSteinerRowsDirty(
                           sol.x, tol, max_rows, sep, dirty, &pairs_scratch_)
                     : form_->FindViolatedSteinerRows(sol.x, tol, max_rows,
                                                      sep, &pairs_scratch_);
      if (phase == 1) dirty_phase = false;
      model.ReserveRows(model.Rows().size() + rows.size());
      for (std::size_t k = 0; k < rows.size(); ++k) {
        const std::array<std::int32_t, 2> pr = pairs_scratch_[k];
        if (!pair_seen_.insert(PairKey(pr[0], pr[1])).second) continue;
        model.AddRow(std::move(rows[k]));
        pool_.push_back(pr);
        ++appended;
      }
      if (phase == 0 && appended == 0) dirty_phase = false;
    }
    if (appended == 0) {
      FinishSolve(sol, info);
      info->lp_rows = model.NumRows();
      return info->status;
    }
    info->rows_added += static_cast<int>(appended);

    // Warm-start the next round only when the model grew modestly (the
    // lazy_row_solver gating): after a large append the previous iterate
    // carries little information about the new optimum.
    if (lp_opt.warm_start_lazy_rounds &&
        appended * 4 <= static_cast<std::size_t>(model.NumRows())) {
      warm.x = sol.x;
      warm.ge_dual = sol.ge_dual;
    } else {
      warm.x.clear();
      warm.ge_dual.clear();
    }
  }

  lp_valid_ = false;
  info->lp_rows = model.NumRows();
  return sol.ok()
             ? Status::NumericalFailure("eco lazy loop did not converge")
             : sol.status;
}

Status EcoSession::RebuildAndSolve(const std::vector<double>* warm_edge_len,
                                   EcoSolveInfo* info) {
  form_.reset();
  Result<EbfFormulation> built =
      EbfFormulation::Build(problem_, SteinerRowPolicy::kSeed);
  if (!built.ok()) return built.status();
  form_.emplace(std::move(built).value());
  ipm_ = IpmContext{};
  lp_dual_.clear();
  lp_valid_ = false;
  needs_rebuild_ = false;

  // Re-materialize the carried Steiner pool against the fresh model: the
  // seed rows come back from Build; every other remembered pair is re-added
  // with its RHS recomputed at the current coordinates and scale.
  std::vector<std::array<std::int32_t, 2>> carried = std::move(pool_);
  pool_ = form_->SteinerRowPairs();
  pair_seen_.clear();
  for (const std::array<std::int32_t, 2>& pr : pool_) {
    pair_seen_.insert(PairKey(pr[0], pr[1]));
  }
  LpModel& model = form_->MutableModel();
  const std::int32_t m = static_cast<std::int32_t>(set_.sinks.size());
  for (const std::array<std::int32_t, 2>& pr : carried) {
    if (pr[0] < 0 || pr[1] >= m || pr[0] == pr[1]) continue;
    if (pair_seen_.count(PairKey(pr[0], pr[1])) != 0) continue;
    const double rhs = form_->SteinerRhsLp(pr[0], pr[1]);
    if (!(rhs > 0.0)) continue;
    model.AddRow(form_->SteinerRowForSinks(pr[0], pr[1]));
    pool_.push_back(pr);
    pair_seen_.insert(PairKey(pr[0], pr[1]));
    ++info->rows_refreshed;
  }

  ge_has_hi_.assign(static_cast<std::size_t>(m), 0);
  for (std::int32_t s = 0; s < m; ++s) {
    ge_has_hi_[static_cast<std::size_t>(s)] =
        std::isfinite(form_->DelayWindowLp(s).hi) ? 1 : 0;
  }

  std::vector<double> warm;
  if (warm_edge_len != nullptr) {
    warm.assign(static_cast<std::size_t>(model.NumCols()), 0.0);
    for (int col = 0; col < model.NumCols(); ++col) {
      const NodeId v = form_->Indexer().NodeOf(col);
      if (static_cast<std::size_t>(v) < warm_edge_len->size()) {
        warm[static_cast<std::size_t>(col)] =
            std::max(0.0, (*warm_edge_len)[static_cast<std::size_t>(v)]) /
            form_->Scale();
      }
    }
  }
  return RunLazyLoop(warm_edge_len != nullptr ? &warm : nullptr, nullptr, {},
                     info);
}

void EcoSession::RepairTopologyAdd(NodeId attach_leaf, std::int32_t new_sink,
                                   std::vector<double>* warm_edge_len) {
  const Point& new_point = set_.sinks[static_cast<std::size_t>(new_sink)];
  const std::int32_t attach_sink = topo_.SinkIndex(attach_leaf);
  const double leaf_len = ManhattanDist(
      set_.sinks[static_cast<std::size_t>(attach_sink)], new_point);

  Topology nt;
  const NodeId n = topo_.NumNodes();
  std::vector<NodeId> map(static_cast<std::size_t>(n), kInvalidNode);
  std::vector<double>& warm = *warm_edge_len;
  warm.assign(static_cast<std::size_t>(n) + 2, 0.0);
  const bool have_len =
      lp_valid_ && edge_len_.size() == static_cast<std::size_t>(n);
  // Node ids ascend children-before-parents, so a forward scan rebuilds the
  // arena with every child already mapped.
  for (NodeId v = 0; v < n; ++v) {
    const TopoNode& node = topo_.Node(v);
    NodeId nv;
    if (node.sink >= 0) {
      nv = nt.AddSinkNode(node.sink);
    } else if (node.right == kInvalidNode) {
      nv = nt.AddUnaryNode(map[static_cast<std::size_t>(node.left)]);
    } else {
      nv = nt.AddInternalNode(map[static_cast<std::size_t>(node.left)],
                              map[static_cast<std::size_t>(node.right)]);
    }
    warm[static_cast<std::size_t>(nv)] =
        have_len ? edge_len_[static_cast<std::size_t>(v)] : 0.0;
    map[static_cast<std::size_t>(v)] = nv;
    if (v == attach_leaf) {
      // NN re-attach: a new internal node takes the old leaf's place, with
      // the old leaf and the new sink as children. The warm guess keeps the
      // old leaf's edge on the splice node, zeroes the re-parented leaf and
      // spans the new leaf's edge to its nearest neighbour.
      const NodeId nleaf = nt.AddSinkNode(new_sink);
      warm[static_cast<std::size_t>(nleaf)] = leaf_len;
      const NodeId ni = nt.AddInternalNode(nv, nleaf);
      warm[static_cast<std::size_t>(ni)] =
          warm[static_cast<std::size_t>(nv)];
      warm[static_cast<std::size_t>(nv)] = 0.0;
      map[static_cast<std::size_t>(v)] = ni;
    }
  }
  nt.SetRoot(map[static_cast<std::size_t>(topo_.Root())], topo_.Mode());
  topo_ = std::move(nt);
}

void EcoSession::RepairTopologyRemove(std::int32_t removed_sink,
                                      std::vector<double>* warm_edge_len) {
  const NodeId n = topo_.NumNodes();
  NodeId leaf = kInvalidNode;
  for (NodeId v = 0; v < n; ++v) {
    if (topo_.IsSinkNode(v) && topo_.SinkIndex(v) == removed_sink) {
      leaf = v;
      break;
    }
  }
  LUBT_ASSERT(leaf != kInvalidNode);
  const NodeId par = topo_.Parent(leaf);
  LUBT_ASSERT(par != kInvalidNode);
  const TopoNode& pn = topo_.Node(par);
  const NodeId sibling = pn.left == leaf ? pn.right : pn.left;
  LUBT_ASSERT(sibling != kInvalidNode);

  Topology nt;
  std::vector<NodeId> map(static_cast<std::size_t>(n), kInvalidNode);
  std::vector<double>& warm = *warm_edge_len;
  warm.assign(static_cast<std::size_t>(n), 0.0);
  const bool have_len =
      lp_valid_ && edge_len_.size() == static_cast<std::size_t>(n);
  for (NodeId v = 0; v < n; ++v) {
    if (v == leaf) continue;  // dropped
    if (v == par) {
      // Splice the parent out: the sibling takes its place, and the two
      // chained edges (sibling->parent, parent->grandparent) merge into one
      // warm length.
      const NodeId ns = map[static_cast<std::size_t>(sibling)];
      map[static_cast<std::size_t>(v)] = ns;
      if (have_len) {
        warm[static_cast<std::size_t>(ns)] =
            edge_len_[static_cast<std::size_t>(sibling)] +
            edge_len_[static_cast<std::size_t>(par)];
      }
      continue;
    }
    const TopoNode& node = topo_.Node(v);
    NodeId nv;
    if (node.sink >= 0) {
      const std::int32_t s =
          node.sink > removed_sink ? node.sink - 1 : node.sink;
      nv = nt.AddSinkNode(s);
    } else if (node.right == kInvalidNode) {
      nv = nt.AddUnaryNode(map[static_cast<std::size_t>(node.left)]);
    } else {
      nv = nt.AddInternalNode(map[static_cast<std::size_t>(node.left)],
                              map[static_cast<std::size_t>(node.right)]);
    }
    warm[static_cast<std::size_t>(nv)] =
        have_len ? edge_len_[static_cast<std::size_t>(v)] : 0.0;
    map[static_cast<std::size_t>(v)] = nv;
  }
  nt.SetRoot(map[static_cast<std::size_t>(topo_.Root())], topo_.Mode());
  topo_ = std::move(nt);
}

Status EcoSession::ApplyRhsEdit(const EcoEdit& edit, EcoSolveInfo* info) {
  const std::int32_t m = static_cast<std::int32_t>(set_.sinks.size());

  // Mutate the instance.
  std::vector<std::int32_t> touched_sinks;
  switch (edit.kind) {
    case EcoEditKind::kSetBounds:
      problem_.bounds[static_cast<std::size_t>(edit.sink)] = {edit.lo,
                                                              edit.hi};
      touched_sinks.push_back(edit.sink);
      break;
    case EcoEditKind::kShiftWindow:
      for (std::int32_t s = 0; s < m; ++s) {
        DelayBounds& b = problem_.bounds[static_cast<std::size_t>(s)];
        b.lo = std::max(0.0, b.lo + edit.lo);
        if (std::isfinite(b.hi)) b.hi += edit.hi;
        touched_sinks.push_back(s);
      }
      break;
    case EcoEditKind::kMoveSink:
      set_.sinks[static_cast<std::size_t>(edit.sink)] = edit.point;
      problem_.sinks = set_.sinks;
      touched_sinks.push_back(edit.sink);
      break;
    default:
      return Status::Internal("not an RHS edit");
  }

  // A window emptied by the source fold makes the instance geometrically
  // infeasible. The formulation cannot carry an empty window on a live row
  // (SetRowBounds requires lo <= hi), so the session parks in a
  // rebuild-needed state; the next edit that restores every window
  // re-solves through the cold-rebuild tier — matching the cold side, which
  // reports kInfeasible for exactly the same instances.
  if (AnyEmptyFoldedWindow()) {
    info->tier = needs_rebuild_ ? EcoTier::kColdRebuild : EcoTier::kRhsWarm;
    info->status = Status::Infeasible(
        "a sink's delay window is emptied by its source distance");
    needs_rebuild_ = true;
    form_.reset();
    lp_valid_ = false;
    return Status::Ok();
  }
  if (needs_rebuild_) {
    info->tier = EcoTier::kColdRebuild;
    info->status = RebuildAndSolve(nullptr, info);
    return Status::Ok();
  }

  // Pending bounds of every touched row: the sinks' delay windows, plus —
  // for a move — the refreshed RHS of every pool row defined by the moved
  // sink.
  std::vector<int> rows;
  std::vector<double> plo;
  std::vector<double> phi;
  for (const std::int32_t s : touched_sinks) {
    const EbfFormulation::LpWindow w = form_->DelayWindowLp(s);
    rows.push_back(DelayRow(s));
    plo.push_back(w.lo);
    phi.push_back(w.hi);
  }
  std::vector<std::size_t> touched_pool;
  if (edit.kind == EcoEditKind::kMoveSink) {
    for (std::size_t k = 0; k < pool_.size(); ++k) {
      if (pool_[k][0] != edit.sink && pool_[k][1] != edit.sink) continue;
      touched_pool.push_back(k);
      rows.push_back(SteinerRow(k));
      plo.push_back(form_->SteinerRhsLp(pool_[k][0], pool_[k][1]));
      phi.push_back(kLpInf);
    }
  }

  // Tier-0 probe against the *old* model bounds (before the writes below):
  // if every touched row stays strictly slack under both old and new
  // bounds — and, for a move, the dirty pair region separates clean at the
  // stored point — the active set is provably unchanged and the stored
  // solution is returned bitwise.
  bool noop = lp_valid_ && RowsStrictlySlack(rows, plo, phi);
  if (noop && edit.kind == EcoEditKind::kMoveSink) {
    dirty_scratch_.assign(static_cast<std::size_t>(m), 0);
    dirty_scratch_[static_cast<std::size_t>(edit.sink)] = 1;
    const SeparationOptions sep{opt_.solve.separation,
                                opt_.solve.separation_jobs};
    noop = form_
               ->FindViolatedSteinerRowsDirty(
                   lp_x_, opt_.solve.separation_tol,
                   opt_.solve.max_rows_per_round, sep, dirty_scratch_)
               .empty();
  }

  // Write the refreshed bounds into the model (bitwise-unchanged rows are
  // skipped so a pure no-op leaves the compiled model untouched).
  for (std::size_t i = 0; i < touched_sinks.size(); ++i) {
    PushDelayWindow(touched_sinks[i], info);
  }
  LpModel& model = form_->MutableModel();
  for (std::size_t i = 0; i < touched_pool.size(); ++i) {
    const int r = rows[touched_sinks.size() + i];
    const double rhs = plo[touched_sinks.size() + i];
    if (model.Row(r).lo == rhs) continue;
    model.SetRowBounds(r, rhs, kLpInf);
    ++info->rows_refreshed;
  }

  if (noop) {
    info->tier = EcoTier::kNoOp;
    info->status = Status::Ok();
    info->cost = last_.cost;
    info->objective = last_.objective;
    info->stats = last_.stats;
    info->lp_rows = model.NumRows();
    return Status::Ok();
  }

  info->tier = EcoTier::kRhsWarm;
  std::span<const std::uint8_t> dirty;
  if (edit.kind == EcoEditKind::kMoveSink) {
    dirty_scratch_.assign(static_cast<std::size_t>(m), 0);
    dirty_scratch_[static_cast<std::size_t>(edit.sink)] = 1;
    dirty = dirty_scratch_;
  }
  info->status = RunLazyLoop(lp_valid_ ? &lp_x_ : nullptr,
                             lp_valid_ ? &lp_dual_ : nullptr, dirty, info);
  return Status::Ok();
}

Status EcoSession::ApplyStructuralEdit(const EcoEdit& edit,
                                       EcoSolveInfo* info) {
  info->tier = EcoTier::kStructural;
  std::vector<double> warm;
  const bool have_warm = lp_valid_ && !needs_rebuild_;

  if (edit.kind == EcoEditKind::kAddSink) {
    const NodeId attach = NearestSinkNode(topo_, set_.sinks, edit.point);
    LUBT_ASSERT(attach != kInvalidNode);
    const std::int32_t new_sink = set_.AddSink(edit.point);
    problem_.sinks = set_.sinks;
    problem_.bounds.push_back({edit.lo, edit.hi});
    RepairTopologyAdd(attach, new_sink, &warm);
  } else {
    RepairTopologyRemove(edit.sink, &warm);
    const Status removed = set_.RemoveSink(edit.sink);
    LUBT_ASSERT(removed.ok());
    problem_.sinks = set_.sinks;
    problem_.bounds.erase(problem_.bounds.begin() + edit.sink);
    // Remap the pool to the shifted sink indices; pairs that lost an
    // endpoint are dropped.
    std::size_t kept = 0;
    for (std::array<std::int32_t, 2>& pr : pool_) {
      if (pr[0] == edit.sink || pr[1] == edit.sink) continue;
      if (pr[0] > edit.sink) --pr[0];
      if (pr[1] > edit.sink) --pr[1];
      pool_[kept++] = pr;
    }
    pool_.resize(kept);
  }

  if (AnyEmptyFoldedWindow()) {
    info->status = Status::Infeasible(
        "a sink's delay window is emptied by its source distance");
    needs_rebuild_ = true;
    form_.reset();
    lp_valid_ = false;
    return Status::Ok();
  }
  info->status = RebuildAndSolve(have_warm ? &warm : nullptr, info);
  return Status::Ok();
}

Result<EcoSolveInfo> EcoSession::Apply(const EcoEdit& edit) {
  const std::int32_t m = static_cast<std::int32_t>(set_.sinks.size());
  const auto valid_sink = [&](std::int32_t s) { return s >= 0 && s < m; };
  const auto valid_window = [](double lo, double hi) -> Status {
    if (std::isnan(lo) || std::isnan(hi)) {
      return Status::InvalidArgument("NaN delay bound");
    }
    if (lo < 0.0) {
      return Status::InvalidArgument("negative delay lower bound");
    }
    if (lo > hi) {
      return Status::InvalidArgument("delay lower bound exceeds upper bound");
    }
    return Status::Ok();
  };

  // Validate before any mutation: a malformed edit must leave the session
  // exactly as it was.
  switch (edit.kind) {
    case EcoEditKind::kMoveSink:
      if (!valid_sink(edit.sink)) {
        return Status::InvalidArgument("move: sink index out of range");
      }
      if (!std::isfinite(edit.point.x) || !std::isfinite(edit.point.y)) {
        return Status::InvalidArgument("move: non-finite coordinates");
      }
      break;
    case EcoEditKind::kAddSink: {
      if (!std::isfinite(edit.point.x) || !std::isfinite(edit.point.y)) {
        return Status::InvalidArgument("add: non-finite coordinates");
      }
      const Status w = valid_window(edit.lo, edit.hi);
      if (!w.ok()) return w;
      break;
    }
    case EcoEditKind::kRemoveSink: {
      if (!valid_sink(edit.sink)) {
        return Status::InvalidArgument("remove: sink index out of range");
      }
      const int min_sinks =
          topo_.Mode() == RootMode::kFreeSource ? 2 : 1;
      if (m - 1 < min_sinks) {
        return Status::InvalidArgument(
            "remove: topology needs at least " + std::to_string(min_sinks) +
            " sink(s)");
      }
      break;
    }
    case EcoEditKind::kSetBounds: {
      if (!valid_sink(edit.sink)) {
        return Status::InvalidArgument("bounds: sink index out of range");
      }
      const Status w = valid_window(edit.lo, edit.hi);
      if (!w.ok()) return w;
      break;
    }
    case EcoEditKind::kShiftWindow: {
      if (std::isnan(edit.lo) || std::isnan(edit.hi)) {
        return Status::InvalidArgument("shift: NaN delta");
      }
      // The shifted instance must stay well-formed (lo <= hi per sink),
      // exactly as ValidateEbfProblem would demand of a cold build.
      for (std::int32_t s = 0; s < m; ++s) {
        const DelayBounds& b = problem_.bounds[static_cast<std::size_t>(s)];
        const double nlo = std::max(0.0, b.lo + edit.lo);
        const double nhi = std::isfinite(b.hi) ? b.hi + edit.hi : kLpInf;
        if (!(nlo <= nhi)) {
          return Status::InvalidArgument(
              "shift: would invert sink " + std::to_string(s) + "'s window");
        }
      }
      break;
    }
  }

  Timer timer;
  EcoSolveInfo info;
  Status dispatch;
  switch (edit.kind) {
    case EcoEditKind::kAddSink:
    case EcoEditKind::kRemoveSink:
      dispatch = ApplyStructuralEdit(edit, &info);
      break;
    default:
      dispatch = ApplyRhsEdit(edit, &info);
      break;
  }
  if (!dispatch.ok()) return dispatch;
  info.lp_rows = NumLpRows();
  info.seconds = timer.Seconds();
  last_ = info;
  LUBT_LOG_DEBUG << "eco " << EcoEditKindName(edit.kind) << ": tier="
                 << EcoTierName(info.tier) << " status="
                 << StatusCodeName(info.status.code()) << " rounds="
                 << info.lazy_rounds << " rows+=" << info.rows_added;
  return info;
}

Result<std::vector<EcoSolveInfo>> EcoSession::ApplyAll(
    std::span<const EcoEdit> edits) {
  std::vector<EcoSolveInfo> infos;
  infos.reserve(edits.size());
  for (const EcoEdit& e : edits) {
    Result<EcoSolveInfo> info = Apply(e);
    if (!info.ok()) return info.status();
    infos.push_back(*info);
  }
  return infos;
}

EbfSolveResult ColdReferenceSolve(const EcoSession& session) {
  EbfSolveOptions options = session.Options().solve;
  options.lp.warm_start = nullptr;
  options.lp.ipm_context = nullptr;
  return SolveEbf(session.Problem(), options);
}

}  // namespace lubt
