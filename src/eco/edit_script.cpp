#include "eco/edit_script.h"

#include <cmath>
#include <fstream>
#include <sstream>

namespace lubt {

namespace {

Status LineError(int line_no, const std::string& what) {
  return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                 what);
}

// Reads a window value; "inf" (any case handled by stream failure fallback)
// maps to kLpInf so scripts can open a window upward.
bool ReadBound(std::istream& in, double* out) {
  std::string tok;
  if (!(in >> tok)) return false;
  if (tok == "inf" || tok == "Inf" || tok == "INF") {
    *out = kLpInf;
    return true;
  }
  std::istringstream ts(tok);
  return static_cast<bool>(ts >> *out) && ts.eof();
}

}  // namespace

const char* EcoEditKindName(EcoEditKind kind) {
  switch (kind) {
    case EcoEditKind::kMoveSink:
      return "move";
    case EcoEditKind::kAddSink:
      return "add";
    case EcoEditKind::kRemoveSink:
      return "remove";
    case EcoEditKind::kSetBounds:
      return "bounds";
    case EcoEditKind::kShiftWindow:
      return "shift";
  }
  return "unknown";
}

Result<std::vector<EcoEdit>> ParseEditScript(const std::string& text) {
  std::vector<EcoEdit> edits;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank line
    EcoEdit e;
    if (kind == "move") {
      e.kind = EcoEditKind::kMoveSink;
      if (!(ls >> e.sink >> e.point.x >> e.point.y)) {
        return LineError(line_no, "move requires SINK X Y");
      }
    } else if (kind == "add") {
      e.kind = EcoEditKind::kAddSink;
      if (!(ls >> e.point.x >> e.point.y) || !ReadBound(ls, &e.lo) ||
          !ReadBound(ls, &e.hi)) {
        return LineError(line_no, "add requires X Y LO HI");
      }
    } else if (kind == "remove") {
      e.kind = EcoEditKind::kRemoveSink;
      if (!(ls >> e.sink)) {
        return LineError(line_no, "remove requires SINK");
      }
    } else if (kind == "bounds") {
      e.kind = EcoEditKind::kSetBounds;
      if (!(ls >> e.sink) || !ReadBound(ls, &e.lo) || !ReadBound(ls, &e.hi)) {
        return LineError(line_no, "bounds requires SINK LO HI");
      }
    } else if (kind == "shift") {
      e.kind = EcoEditKind::kShiftWindow;
      if (!(ls >> e.lo >> e.hi)) {
        return LineError(line_no, "shift requires DLO DHI");
      }
    } else {
      return LineError(line_no, "unknown edit '" + kind + "'");
    }
    std::string trailing;
    if (ls >> trailing) {
      return LineError(line_no, "trailing token '" + trailing + "'");
    }
    edits.push_back(e);
  }
  return edits;
}

std::string FormatEditScript(std::span<const EcoEdit> edits) {
  std::ostringstream os;
  os.precision(17);
  for (const EcoEdit& e : edits) {
    os << EcoEditKindName(e.kind);
    switch (e.kind) {
      case EcoEditKind::kMoveSink:
        os << ' ' << e.sink << ' ' << e.point.x << ' ' << e.point.y;
        break;
      case EcoEditKind::kAddSink:
        os << ' ' << e.point.x << ' ' << e.point.y << ' ' << e.lo << ' ';
        if (std::isinf(e.hi)) {
          os << "inf";
        } else {
          os << e.hi;
        }
        break;
      case EcoEditKind::kRemoveSink:
        os << ' ' << e.sink;
        break;
      case EcoEditKind::kSetBounds:
        os << ' ' << e.sink << ' ' << e.lo << ' ';
        if (std::isinf(e.hi)) {
          os << "inf";
        } else {
          os << e.hi;
        }
        break;
      case EcoEditKind::kShiftWindow:
        os << ' ' << e.lo << ' ' << e.hi;
        break;
    }
    os << '\n';
  }
  return os.str();
}

Result<std::vector<EcoEdit>> LoadEditScript(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseEditScript(buffer.str());
}

EcoEdit ScaleEditWindows(EcoEdit edit, double radius) {
  switch (edit.kind) {
    case EcoEditKind::kAddSink:
    case EcoEditKind::kSetBounds:
    case EcoEditKind::kShiftWindow:
      edit.lo *= radius;
      if (std::isfinite(edit.hi)) edit.hi *= radius;
      break;
    case EcoEditKind::kMoveSink:
    case EcoEditKind::kRemoveSink:
      break;
  }
  return edit;
}

}  // namespace lubt
