#include "serve/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <utility>

#include "serve/framing.h"
#include "serve/protocol.h"

namespace lubt {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Listen(const ServerOptions& options,
                                               Dispatcher* dispatcher) {
  std::unique_ptr<Server> server(new Server());
  server->dispatcher_ = dispatcher;

  if (!options.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options.unix_path);
    }
    std::memcpy(addr.sun_path, options.unix_path.c_str(),
                options.unix_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket(AF_UNIX)");
    std::remove(options.unix_path.c_str());  // replace a stale socket file
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const Status st = Errno("bind(" + options.unix_path + ")");
      ::close(fd);
      return st;
    }
    server->unix_path_ = options.unix_path;
    server->listen_fd_ = fd;
  } else if (options.tcp_port >= 0) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options.tcp_port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const Status st =
          Errno("bind(127.0.0.1:" + std::to_string(options.tcp_port) + ")");
      ::close(fd);
      return st;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      server->port_ = static_cast<int>(ntohs(bound.sin_port));
    }
    server->listen_fd_ = fd;
  } else {
    return Status::InvalidArgument(
        "server needs a unix path or a tcp port to listen on");
  }

  if (::listen(server->listen_fd_, 64) < 0) {
    return Errno("listen");
  }
  dispatcher->SetShutdownHook([raw = server.get()] { raw->Shutdown(); });
  return server;
}

Server::~Server() {
  Shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!unix_path_.empty()) std::remove(unix_path_.c_str());
  // Run() joins the connection threads; if Run() was never entered there
  // are none (accept happens only inside Run).
}

void Server::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  // Half-close rather than close: the fd number stays reserved (no reuse
  // race with a concurrent accept), while accept()/read() unblock.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void Server::Run() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or fatally broken): stop accepting
    }
    {
      MutexLock lock(mu_);
      if (shutdown_) {
        ::close(fd);
        break;
      }
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      conns_.push_back(conn);
      threads_.emplace_back([this, conn] { ConnLoop(conn); });
    }
  }

  // Unblock every connection read, then join. New conns cannot appear —
  // the accept loop above is the only creator and it has exited.
  std::vector<std::thread> to_join;
  {
    MutexLock lock(mu_);
    for (const std::shared_ptr<Conn>& conn : conns_) {
      ::shutdown(conn->fd, SHUT_RDWR);
    }
    to_join.swap(threads_);
  }
  for (std::thread& t : to_join) t.join();
  {
    MutexLock lock(mu_);
    for (const std::shared_ptr<Conn>& conn : conns_) {
      // Late response callbacks (pool jobs still draining) test fd under
      // write_mu; closing under the same mutex means they either write to
      // the half-closed socket (harmless EPIPE) or see -1 — never a reused
      // fd number.
      MutexLock write_lock(conn->write_mu);
      ::close(conn->fd);
      conn->fd = -1;
    }
    conns_.clear();
  }
}

void Server::ConnLoop(const std::shared_ptr<Conn>& conn) {
  FrameDecoder decoder;
  for (;;) {
    std::string payload;
    const FrameDecoder::Event event = decoder.Next(&payload);
    if (event == FrameDecoder::Event::kFrame) {
      // The callback may run on a pool worker after this loop moved on (or
      // even after it exited); the shared_ptr keeps the Conn alive and the
      // write mutex keeps frames whole.
      dispatcher_->Handle(
          std::move(payload), [conn](std::string response) {
            MutexLock lock(conn->write_mu);
            if (conn->fd >= 0) {
              // Failures (EPIPE after half-close) are deliberate no-ops.
              const Status ignored = WriteFrameFd(conn->fd, response);
              (void)ignored;
            }
          });
      continue;
    }
    if (event == FrameDecoder::Event::kBad) {
      // Best-effort diagnostic, then drop the connection: framing has no
      // resync point.
      const std::string error =
          ErrorResponse(std::nullopt, decoder.Error()).Dump();
      MutexLock lock(conn->write_mu);
      if (conn->fd >= 0) {
        const Status ignored = WriteFrameFd(conn->fd, error);
        (void)ignored;
      }
      return;
    }
    Result<std::string> chunk = ReadSomeFd(conn->fd, 64 << 10);
    if (!chunk.ok() || chunk->empty()) return;  // error or EOF
    decoder.Feed(*chunk);
  }
}

}  // namespace lubt
