// lubt_server wire protocol: typed requests/responses over serve/json.h
// (DESIGN.md §15 documents the full message grammar).
//
// Every request is one JSON object in one frame:
//
//   {"op": <string>, "id": <number, optional, echoed>, ...}
//
// Ops and their fields:
//   open_session   "session", "sinks": [[x,y],...], "source": [x,y]?,
//                  and either "bounds": [[lo,hi],...] (layout units; hi may
//                  be the string "inf") or "window": [lo,hi] (radius units,
//                  applied to every sink). Builds an NN-merge topology and
//                  cold-solves. Reopening an existing name replaces it.
//   solve          "session" — report the current solve state.
//   eco_edit       "session", "script": <edit-script text, eco/edit_script.h
//                  format, windows in initial-radius units>. Applies every
//                  edit in order; stops at the first malformed one.
//   query          "session", "tree": bool? — instance summary, optionally
//                  with the solved tree in io/tree_io.h text format.
//   optimize       "session", "rounds": number, "seed": number? — anneal
//                  over topologies (search/topo_optimizer.h) for up to
//                  "rounds" SA rounds from the session's solved state and
//                  commit the best tree found.
//   close_session  "session" — drop the session and its spill file.
//   stats          server-wide counters.
//   shutdown       stop accepting work; the server exits after this
//                  response is written.
//
// Responses echo "id" and carry either "result" (an op-specific object) or
// "error": {"code": <StatusCodeName>, "message": <string>}:
//
//   {"id": 7, "ok": true,  "result": {...}}
//   {"id": 7, "ok": false, "error": {"code": "NOT_FOUND", "message": "..."}}
//
// Parsing is strict: unknown ops, missing fields and type mismatches are
// InvalidArgument — the request never reaches a session half-validated.

#ifndef LUBT_SERVE_PROTOCOL_H_
#define LUBT_SERVE_PROTOCOL_H_

#include <optional>
#include <string>
#include <vector>

#include "ebf/formulation.h"
#include "eco/eco_session.h"
#include "eco/edit_script.h"
#include "io/sink_set.h"
#include "serve/json.h"
#include "util/status.h"

namespace lubt {

enum class ServeOp {
  kOpenSession,
  kSolve,
  kEcoEdit,
  kQuery,
  kOptimize,
  kCloseSession,
  kStats,
  kShutdown,
};

const char* ServeOpName(ServeOp op);

/// One parsed, fully validated request.
struct ServeRequest {
  ServeOp op = ServeOp::kStats;
  std::optional<double> id;  ///< client correlation id, echoed verbatim
  std::string session;       ///< empty only for stats/shutdown

  // open_session payload: the instance (set.name == session) with delay
  // windows already resolved to layout units.
  SinkSet set;
  std::vector<DelayBounds> bounds;

  // eco_edit payload, window fields still in initial-radius units (the
  // dispatcher scales them against the session's InitialRadius()).
  std::vector<EcoEdit> edits;

  // query payload.
  bool want_tree = false;

  // optimize payload.
  int opt_rounds = 0;
  std::uint64_t opt_seed = 1;
};

/// Parse + validate one request frame.
Result<ServeRequest> ParseServeRequest(const std::string& payload);

/// Response skeletons. The ok form carries an empty "result" object for the
/// caller to fill via MutableResult-style Set() calls on the returned Json.
Json OkResponse(const std::optional<double>& id);
Json ErrorResponse(const std::optional<double>& id, const Status& error);

/// The solve-report object shared by open_session/solve/eco_edit responses.
/// `deterministic` zeroes the wall-clock field so golden tests are stable.
Json SolveInfoJson(const EcoSolveInfo& info, bool deterministic);

}  // namespace lubt

#endif  // LUBT_SERVE_PROTOCOL_H_
