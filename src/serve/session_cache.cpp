#include "serve/session_cache.h"

#include <cstdio>
#include <utility>

#include "serve/checkpoint_codec.h"

namespace lubt {
namespace {

// Resident-footprint estimate for a live session; same family as
// ApproxSessionBytes (serve/checkpoint_codec.h) but sourced from the
// session's accessors so no checkpoint copy is needed to account it.
std::size_t ApproxLiveBytes(const EcoSession& session) {
  const std::size_t m = static_cast<std::size_t>(session.NumSinks());
  const std::size_t n = static_cast<std::size_t>(session.Topo().NumNodes());
  const std::size_t rows = static_cast<std::size_t>(session.NumLpRows());
  return 4096 + 64 * m + 64 * n + 72 * n + 160 * rows;
}

// Spill files live flat in one directory, so the client-chosen session name
// must be made path-safe: alphanumerics, '-' and '_' pass through, every
// other byte becomes %XX. Injective, so distinct names cannot collide.
std::string PathSafe(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool plain = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (plain) {
      out.push_back(c);
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out.append(buf);
    }
  }
  return out;
}

}  // namespace

std::string SessionCache::SpillPath(const std::string& name) const {
  return opt_.spill_dir + "/" + PathSafe(name) + ".ckpt";
}

Strand* SessionCache::StrandFor(const std::string& name) {
  MutexLock lock(mu_);
  Entry& entry = entries_[name];
  if (entry.strand == nullptr) {
    entry.strand = std::make_unique<Strand>(pool_);
    ++stats_.known;
  }
  return entry.strand.get();
}

void SessionCache::Install(const std::string& name,
                           std::unique_ptr<EcoSession> session) {
  const std::size_t bytes = ApproxLiveBytes(*session);
  bool had_spill = false;
  {
    MutexLock lock(mu_);
    Entry& entry = entries_[name];
    LUBT_ASSERT(entry.strand != nullptr && !entry.busy);
    if (entry.session != nullptr) {
      resident_bytes_ -= entry.bytes;
      --resident_;
    }
    if (entry.spilled) {
      --stats_.spilled;
      had_spill = true;
    }
    entry.session = std::move(session);
    entry.spilled = false;
    entry.busy = true;
    entry.bytes = bytes;
    entry.touch = ++clock_;
    resident_bytes_ += bytes;
    ++resident_;
  }
  // A reopen overwrites any stale spilled state; the file is dead either
  // way and removing it outside the lock keeps the cache mutex I/O-free
  // on this path.
  if (had_spill) std::remove(SpillPath(name).c_str());
}

Result<EcoSession*> SessionCache::Acquire(const std::string& name) {
  {
    MutexLock lock(mu_);
    const auto it = entries_.find(name);
    if (it == entries_.end() ||
        (it->second.session == nullptr && !it->second.spilled)) {
      return Status::NotFound("no session named '" + name + "'");
    }
    Entry& entry = it->second;
    LUBT_ASSERT(!entry.busy);  // per-session strand serialization
    entry.busy = true;
    if (entry.session != nullptr) return entry.session.get();
    // Spilled: reserve the entry (busy), restore outside the lock so other
    // sessions keep flowing during file I/O + model reconstruction.
  }

  const std::string path = SpillPath(name);
  Result<EcoCheckpoint> loaded = LoadCheckpoint(path);
  std::unique_ptr<EcoSession> restored;
  Status error;
  if (!loaded.ok()) {
    error = loaded.status();
  } else {
    Result<std::unique_ptr<EcoSession>> session =
        EcoSession::Restore(std::move(*loaded), opt_.eco);
    if (!session.ok()) {
      error = session.status();
    } else {
      restored = std::move(*session);
    }
  }

  MutexLock lock(mu_);
  Entry& entry = entries_[name];
  if (restored == nullptr) {
    entry.busy = false;
    return Status::Internal("restore of session '" + name +
                            "' failed: " + error.ToString());
  }
  entry.bytes = ApproxLiveBytes(*restored);
  entry.session = std::move(restored);
  entry.spilled = false;
  --stats_.spilled;
  resident_bytes_ += entry.bytes;
  ++resident_;
  ++stats_.restores;
  // The live session now owns the state; the spill file is stale the
  // moment an edit lands, so drop it eagerly.
  std::remove(path.c_str());
  return entry.session.get();
}

void SessionCache::Release(const std::string& name) {
  MutexLock lock(mu_);
  const auto it = entries_.find(name);
  LUBT_ASSERT(it != entries_.end() && it->second.busy);
  it->second.busy = false;
  it->second.touch = ++clock_;
  EnforceBudgetLocked();
}

Status SessionCache::Close(const std::string& name) {
  bool had_state = false;
  {
    MutexLock lock(mu_);
    const auto it = entries_.find(name);
    if (it != entries_.end()) {
      Entry& entry = it->second;
      LUBT_ASSERT(!entry.busy);
      if (entry.session != nullptr) {
        resident_bytes_ -= entry.bytes;
        --resident_;
        entry.session.reset();
        had_state = true;
      }
      if (entry.spilled) {
        entry.spilled = false;
        --stats_.spilled;
        had_state = true;
      }
      entry.bytes = 0;
    }
  }
  std::remove(SpillPath(name).c_str());
  if (!had_state) return Status::NotFound("no session named '" + name + "'");
  return Status::Ok();
}

SessionCacheStats SessionCache::Stats() {
  MutexLock lock(mu_);
  SessionCacheStats out = stats_;
  out.resident = resident_;
  return out;
}

void SessionCache::EnforceBudgetLocked() {
  // Evict least-recently-used idle sessions until both budgets hold. The
  // spill write happens under the cache mutex: eviction must be atomic
  // against a concurrent Acquire of the same entry, and evictions are rare
  // by construction (budget transitions only).
  for (;;) {
    const bool over_entries = resident_ > opt_.max_resident;
    const bool over_bytes = resident_bytes_ > opt_.max_resident_bytes;
    if (!over_entries && !over_bytes) return;
    std::map<std::string, Entry>::iterator victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.session == nullptr || it->second.busy) continue;
      if (victim == entries_.end() ||
          it->second.touch < victim->second.touch) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything pinned; back off
    Entry& entry = victim->second;
    const EcoCheckpoint checkpoint = entry.session->Checkpoint();
    const Status stored = StoreCheckpoint(checkpoint, SpillPath(victim->first));
    if (!stored.ok()) {
      // Spill target unusable (disk full, dir removed): keep the session
      // live rather than lose state; count it and stop trying this round.
      ++stats_.eviction_failures;
      return;
    }
    resident_bytes_ -= entry.bytes;
    --resident_;
    entry.session.reset();
    entry.spilled = true;
    ++stats_.spilled;
    ++stats_.evictions;
  }
}

}  // namespace lubt
