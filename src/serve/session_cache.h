// Named EcoSession cache with LRU spill-to-disk (lubt_server's state).
//
// The server keeps many logical sessions but bounds what stays resident:
// an entry budget (max live EcoSessions) and a byte budget (approximate
// resident footprint). When a budget is exceeded the least-recently-used
// idle session is checkpointed (serve/checkpoint_codec.h) into the spill
// directory and destroyed; the next request that touches it transparently
// restores it — bitwise, per EcoSession::Restore's contract, so a client
// cannot tell eviction ever happened (tests/serve_test.cpp gates on it).
//
// Concurrency model: the cache itself is thread-safe (one internal Mutex),
// but sessions are not — each entry owns a Strand (runtime/strand.h) and
// the dispatcher routes every request for a session through that strand, so
// per-session work is serialized while distinct sessions run concurrently.
// The busy flag pins an entry against eviction for exactly the span of the
// strand job that acquired it; only idle sessions are evictable, so a
// session is never checkpointed mid-solve.
//
// Closed sessions leave a strand tombstone behind: requests already queued
// on the strand when close_session ran still execute (and answer NOT_FOUND)
// against a live Strand object, and reopening the name reuses it.

#ifndef LUBT_SERVE_SESSION_CACHE_H_
#define LUBT_SERVE_SESSION_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "check/mutex.h"
#include "check/thread_annotations.h"
#include "eco/eco_session.h"
#include "runtime/strand.h"
#include "runtime/thread_pool.h"

namespace lubt {

struct SessionCacheOptions {
  /// Max live EcoSessions; the bench runs with this far below the session
  /// count to force real evict/restore cycles.
  int max_resident = 16;
  /// Approximate resident-byte budget across all live sessions.
  std::size_t max_resident_bytes = 512u << 20;
  /// Directory for spill files (one `<name>.ckpt` per evicted session).
  /// Must exist and be writable.
  std::string spill_dir;
  /// Solve options every session is created AND restored with — they must
  /// match for the bitwise restore contract (eco/checkpoint.h).
  EcoOptions eco;
};

struct SessionCacheStats {
  std::uint64_t evictions = 0;
  std::uint64_t restores = 0;
  std::uint64_t eviction_failures = 0;  ///< spill write failed; session kept
  int resident = 0;   ///< live EcoSessions
  int spilled = 0;    ///< sessions currently on disk
  int known = 0;      ///< entries incl. closed tombstones
};

/// Thread-safe registry of named sessions; see the header comment for the
/// strand/pinning discipline.
class SessionCache {
 public:
  explicit SessionCache(SessionCacheOptions options, ThreadPool* pool)
      : opt_(std::move(options)), pool_(pool) {}

  SessionCache(const SessionCache&) = delete;
  SessionCache& operator=(const SessionCache&) = delete;

  /// The strand serializing all work for `name`; creates the entry on first
  /// touch. The returned strand lives until the cache is destroyed.
  Strand* StrandFor(const std::string& name) LUBT_EXCLUDES(mu_);

  /// Install a freshly created session under `name`, replacing any previous
  /// live/spilled/closed state. Pins it busy; pair with Release(). Must run
  /// on the entry's strand.
  void Install(const std::string& name, std::unique_ptr<EcoSession> session)
      LUBT_EXCLUDES(mu_);

  /// Pin the named session resident — restoring it from its spill file if
  /// it was evicted — and return it. NotFound for never-opened or closed
  /// names; Internal for a corrupt spill file. Pair every success with
  /// Release(). Must run on the entry's strand (which is what makes the
  /// returned pointer safe to use lock-free until Release).
  Result<EcoSession*> Acquire(const std::string& name) LUBT_EXCLUDES(mu_);

  /// Unpin, stamp the LRU clock, and enforce the budgets (which may evict
  /// this or other idle sessions). Must follow a successful Install/Acquire
  /// on the same strand.
  void Release(const std::string& name) LUBT_EXCLUDES(mu_);

  /// Destroy the session and its spill file; leaves a reusable strand
  /// tombstone. NotFound when there is nothing to close. Must run on the
  /// entry's strand with the session NOT acquired.
  Status Close(const std::string& name) LUBT_EXCLUDES(mu_);

  SessionCacheStats Stats() LUBT_EXCLUDES(mu_);

 private:
  struct Entry {
    std::unique_ptr<Strand> strand;       // never null once created
    std::unique_ptr<EcoSession> session;  // null when spilled or closed
    bool spilled = false;                 // spill file holds the state
    bool busy = false;                    // pinned by an in-flight request
    std::uint64_t touch = 0;              // logical LRU clock stamp
    std::size_t bytes = 0;                // footprint estimate while live
  };

  std::string SpillPath(const std::string& name) const;
  void EnforceBudgetLocked() LUBT_REQUIRES(mu_);

  const SessionCacheOptions opt_;
  ThreadPool* pool_;
  Mutex mu_;
  std::map<std::string, Entry> entries_ LUBT_GUARDED_BY(mu_);
  std::uint64_t clock_ LUBT_GUARDED_BY(mu_) = 0;
  std::size_t resident_bytes_ LUBT_GUARDED_BY(mu_) = 0;
  int resident_ LUBT_GUARDED_BY(mu_) = 0;
  SessionCacheStats stats_ LUBT_GUARDED_BY(mu_);
};

}  // namespace lubt

#endif  // LUBT_SERVE_SESSION_CACHE_H_
