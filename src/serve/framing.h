// Wire framing for lubt_server: 4-byte big-endian length prefix + payload.
//
// The stream grammar is trivial — frame := u32_be(length) payload[length] —
// but the failure modes are not, and this module owns all of them:
//
//  * short reads/writes: kernels split socket I/O arbitrarily, so every
//    transfer here loops until complete or failed, retrying EINTR. These
//    helpers are the ONLY place in src/serve/ allowed to touch the raw
//    read/write/send/recv syscalls — lubt_lint's `serve-raw-io` rule bans
//    them everywhere else in the subsystem, so partial-I/O handling cannot
//    be reintroduced ad hoc;
//  * truncated prefixes / split frames: FrameDecoder is incremental and
//    byte-count agnostic — feed it whatever arrived, take out whole frames;
//  * oversized lengths: a length above the decoder's limit poisons the
//    stream (kBad) instead of attempting the allocation, bounding what a
//    malicious or corrupt peer can make the server buffer.
//
// tests/serve_test.cpp drives the decoder byte-at-a-time and with
// truncated/oversized/garbage inputs.

#ifndef LUBT_SERVE_FRAMING_H_
#define LUBT_SERVE_FRAMING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace lubt {

/// Frames above this many payload bytes are rejected (16 MiB — far above
/// any legitimate protocol message, far below an allocation-of-interest).
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/// Append one framed message (prefix + payload) to `out`.
void AppendFrame(std::string_view payload, std::string* out);

/// Incremental frame extractor over an arbitrarily-chunked byte stream.
class FrameDecoder {
 public:
  enum class Event {
    kFrame,     ///< one complete payload extracted
    kNeedMore,  ///< no complete frame buffered yet
    kBad,       ///< stream poisoned (oversized length); no recovery
  };

  /// Buffer more raw bytes from the stream.
  void Feed(std::string_view bytes);

  /// Try to extract the next complete frame into `payload`. After kBad the
  /// decoder stays poisoned (Error() explains) and every call returns kBad.
  Event Next(std::string* payload);

  const Status& Error() const { return error_; }

  /// Bytes buffered but not yet consumed (tests).
  std::size_t BufferedBytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
  Status error_;
  bool poisoned_ = false;
};

/// Write all of `bytes` to `fd`, looping over short writes and EINTR.
/// Sockets are written with send(MSG_NOSIGNAL) so a vanished peer yields a
/// Status (EPIPE) instead of killing the process with SIGPIPE.
Status WriteAllFd(int fd, std::string_view bytes);

/// Read up to `max_bytes` from `fd` (at least 1 unless EOF), EINTR-safe.
/// Empty string means clean EOF.
Result<std::string> ReadSomeFd(int fd, std::size_t max_bytes);

/// Frame + write one message.
Status WriteFrameFd(int fd, std::string_view payload);

/// Blocking read of one whole frame through `decoder`: loops ReadSomeFd
/// until a frame completes. Returns NotFound on clean EOF at a frame
/// boundary, InvalidArgument on EOF mid-frame or a poisoned stream.
Result<std::string> ReadFrameFd(int fd, FrameDecoder* decoder);

}  // namespace lubt

#endif  // LUBT_SERVE_FRAMING_H_
