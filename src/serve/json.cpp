#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace lubt {
namespace {

// Nesting bound for the recursive-descent parser: protocol messages nest a
// handful of levels; anything deeper is adversarial input.
constexpr int kMaxDepth = 64;

bool IsJsonWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

void AppendEscaped(std::string_view s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double v, std::string* out) {
  // Integral values within the exactly-representable range print as
  // integers (ids, counts); everything else round-trips through %.17g.
  constexpr double kExact = 9007199254740992.0;  // 2^53
  // lubt-lint: allow(float-eq) — integrality test, not a tolerance check
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) <= kExact) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out->append(buf);
    return;
  }
  if (!std::isfinite(v)) {
    // JSON cannot carry inf/nan; the protocol layer never passes them here,
    // but emit null rather than an invalid token if one slips through.
    out->append("null");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Run() {
    Json value;
    LUBT_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && IsJsonWhitespace(text_[pos_])) ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_).substr(0, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      std::string s;
      LUBT_RETURN_IF_ERROR(ParseString(&s));
      *out = Json::MakeString(std::move(s));
      return Status::Ok();
    }
    if (ConsumeWord("true")) {
      *out = Json::MakeBool(true);
      return Status::Ok();
    }
    if (ConsumeWord("false")) {
      *out = Json::MakeBool(false);
      return Status::Ok();
    }
    if (ConsumeWord("null")) {
      *out = Json::MakeNull();
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseObject(Json* out, int depth) {
    ++pos_;  // '{'
    Json obj = Json::MakeObject();
    SkipWhitespace();
    if (Consume('}')) {
      *out = std::move(obj);
      return Status::Ok();
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      std::string key;
      LUBT_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      Json value;
      LUBT_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      obj.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Fail("expected ',' or '}' in object");
    }
    *out = std::move(obj);
    return Status::Ok();
  }

  Status ParseArray(Json* out, int depth) {
    ++pos_;  // '['
    Json arr = Json::MakeArray();
    SkipWhitespace();
    if (Consume(']')) {
      *out = std::move(arr);
      return Status::Ok();
    }
    for (;;) {
      Json value;
      LUBT_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      arr.Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Fail("expected ',' or ']' in array");
    }
    *out = std::move(arr);
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          LUBT_RETURN_IF_ERROR(ParseHex4(&code));
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: require the low half immediately after.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("unpaired high surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            LUBT_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Fail("unpaired low surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v += static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v += static_cast<unsigned>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        v += static_cast<unsigned>(c - 'A') + 10;
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    *out = v;
    return Status::Ok();
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(Json* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      return Fail("malformed number '" + token + "'");
    }
    *out = Json::MakeNumber(v);
    return Status::Ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::MakeBool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::MakeNumber(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::MakeString(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::MakeArray() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::MakeObject() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::AsBool() const {
  LUBT_ASSERT(type_ == Type::kBool);
  return bool_;
}

double Json::AsNumber() const {
  LUBT_ASSERT(type_ == Type::kNumber);
  return number_;
}

const std::string& Json::AsString() const {
  LUBT_ASSERT(type_ == Type::kString);
  return string_;
}

std::size_t Json::Size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

const Json& Json::At(std::size_t i) const {
  LUBT_ASSERT(type_ == Type::kArray && i < array_.size());
  return array_[i];
}

void Json::Append(Json v) {
  LUBT_ASSERT(type_ == Type::kArray);
  array_.push_back(std::move(v));
}

const Json* Json::Find(std::string_view key) const {
  LUBT_ASSERT(type_ == Type::kObject);
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::Set(std::string key, Json value) {
  LUBT_ASSERT(type_ == Type::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

void Json::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      return;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Type::kNumber:
      AppendNumber(number_, out);
      return;
    case Type::kString:
      AppendEscaped(string_, out);
      return;
    case Type::kArray: {
      out->push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out->push_back(',');
        array_[i].DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out->push_back(',');
        AppendEscaped(object_[i].first, out);
        out->push_back(':');
        object_[i].second.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace lubt
