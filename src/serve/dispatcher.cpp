#include "serve/dispatcher.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "io/tree_io.h"
#include "search/topo_optimizer.h"
#include "topo/nn_merge.h"

namespace lubt {

int Dispatcher::ResolveJobs(int jobs) {
  if (jobs > 0) return jobs;
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

Dispatcher::Dispatcher(DispatcherOptions options)
    : opt_(std::move(options)),
      // cache_ only stores the pool pointer at construction; it dereferences
      // it no earlier than the first StrandFor(), by which time pool_ is
      // fully constructed.
      cache_(opt_.cache, &pool_),
      pool_(ResolveJobs(opt_.jobs)) {}

void Dispatcher::SetShutdownHook(std::function<void()> hook) {
  MutexLock lock(mu_);
  shutdown_hook_ = std::move(hook);
}

bool Dispatcher::ShutdownRequested() {
  MutexLock lock(mu_);
  return shutdown_;
}

void Dispatcher::Handle(std::string payload,
                        std::function<void(std::string)> respond) {
  Result<ServeRequest> parsed = ParseServeRequest(payload);
  if (!parsed.ok()) {
    MutexLock lock(mu_);
    ++stats_.requests;
    respond(ErrorResponse(std::nullopt, parsed.status()).Dump());
    return;
  }
  ServeRequest req = std::move(*parsed);

  {
    MutexLock lock(mu_);
    ++stats_.requests;
    // Stats stays answerable during shutdown (it is how an operator watches
    // the drain); everything else is refused.
    if (shutdown_ && req.op != ServeOp::kStats) {
      ++stats_.rejected;
      respond(ErrorResponse(req.id,
                            Status::Unavailable("server is shutting down"))
                  .Dump());
      return;
    }
  }

  if (req.op == ServeOp::kStats) {
    respond(ExecuteStats(req).Dump());
    return;
  }
  if (req.op == ServeOp::kShutdown) {
    std::function<void()> hook;
    {
      MutexLock lock(mu_);
      shutdown_ = true;
      hook = std::move(shutdown_hook_);
      shutdown_hook_ = nullptr;
    }
    Json resp = OkResponse(req.id);
    Json result = Json::MakeObject();
    result.Set("shutting_down", Json::MakeBool(true));
    resp.Set("result", std::move(result));
    // The response reaches its sink BEFORE the hook stops the transport, so
    // the requesting client always sees the acknowledgement.
    respond(resp.Dump());
    if (hook) hook();
    return;
  }

  // Admission control: a soft watermark on queued work. Checked before the
  // strand post so an overloaded server answers immediately instead of
  // growing an unbounded queue.
  if (opt_.max_pending > 0 && pool_.PendingJobs() >= opt_.max_pending) {
    MutexLock lock(mu_);
    ++stats_.rejected;
    respond(ErrorResponse(req.id, Status::Unavailable(
                                      "server overloaded: " +
                                      std::to_string(opt_.max_pending) +
                                      " requests already pending"))
                .Dump());
    return;
  }

  Strand* strand = cache_.StrandFor(req.session);
  strand->Post(
      [this, request = std::move(req), sink = std::move(respond)]() mutable {
        sink(Execute(request).Dump());
      });
}

std::string Dispatcher::HandleSync(const std::string& payload) {
  Mutex done_mu;
  CondVar done_cv;
  std::string response;
  bool done = false;
  Handle(payload, [&done_mu, &done_cv, &response, &done](std::string out) {
    MutexLock lock(done_mu);
    response = std::move(out);
    done = true;
    done_cv.NotifyAll();
  });
  MutexLock lock(done_mu);
  while (!done) done_cv.Wait(done_mu);
  return response;
}

Json Dispatcher::Execute(const ServeRequest& req) {
  switch (req.op) {
    case ServeOp::kOpenSession:
      return ExecuteOpenSession(req);
    case ServeOp::kSolve:
    case ServeOp::kEcoEdit:
    case ServeOp::kQuery:
    case ServeOp::kOptimize:
    case ServeOp::kCloseSession:
      return ExecuteSessionOp(req);
    case ServeOp::kStats:
    case ServeOp::kShutdown:
      break;  // handled inline in Handle()
  }
  return ErrorResponse(req.id, Status::Internal("unroutable op"));
}

Json Dispatcher::ExecuteOpenSession(const ServeRequest& req) {
  SinkSet set = req.set;
  Topology topo = NnMergeTopology(set.sinks, set.source);
  Result<std::unique_ptr<EcoSession>> created = EcoSession::Create(
      std::move(set), req.bounds, std::move(topo), opt_.cache.eco);
  if (!created.ok()) return ErrorResponse(req.id, created.status());

  EcoSession* session = created->get();
  cache_.Install(req.session, std::move(*created));
  Json result = SolveInfoJson(session->Last(), opt_.deterministic);
  result.Set("sinks", Json::MakeNumber(session->NumSinks()));
  result.Set("radius", Json::MakeNumber(session->InitialRadius()));
  cache_.Release(req.session);

  Json resp = OkResponse(req.id);
  resp.Set("result", std::move(result));
  return resp;
}

Json Dispatcher::ExecuteSessionOp(const ServeRequest& req) {
  if (req.op == ServeOp::kCloseSession) {
    const Status closed = cache_.Close(req.session);
    if (!closed.ok()) return ErrorResponse(req.id, closed);
    Json resp = OkResponse(req.id);
    Json result = Json::MakeObject();
    result.Set("closed", Json::MakeBool(true));
    resp.Set("result", std::move(result));
    return resp;
  }

  Result<EcoSession*> acquired = cache_.Acquire(req.session);
  if (!acquired.ok()) return ErrorResponse(req.id, acquired.status());
  EcoSession* session = *acquired;

  Json out;
  switch (req.op) {
    case ServeOp::kSolve: {
      Json resp = OkResponse(req.id);
      resp.Set("result", SolveInfoJson(session->Last(), opt_.deterministic));
      out = std::move(resp);
      break;
    }
    case ServeOp::kEcoEdit: {
      std::vector<EcoEdit> scaled;
      scaled.reserve(req.edits.size());
      for (const EcoEdit& edit : req.edits) {
        scaled.push_back(ScaleEditWindows(edit, session->InitialRadius()));
      }
      Result<std::vector<EcoSolveInfo>> infos = session->ApplyAll(scaled);
      if (!infos.ok()) {
        out = ErrorResponse(req.id, infos.status());
        break;
      }
      Json result = SolveInfoJson(infos->back(), opt_.deterministic);
      result.Set("edits_applied",
                 Json::MakeNumber(static_cast<double>(infos->size())));
      Json resp = OkResponse(req.id);
      resp.Set("result", std::move(result));
      out = std::move(resp);
      break;
    }
    case ServeOp::kOptimize: {
      TopoSearchOptions sopt;
      sopt.max_rounds = req.opt_rounds;
      sopt.seed = req.opt_seed;
      sopt.jobs = 1;  // the session's strand owns this thread; stay on it
      sopt.eco = opt_.cache.eco;
      Result<TopoSearchResult> searched =
          TopoOptimizer::Optimize(*session, sopt);
      if (!searched.ok()) {
        out = ErrorResponse(req.id, searched.status());
        break;
      }
      Json result = Json::MakeObject();
      result.Set("initial_cost", Json::MakeNumber(searched->initial_cost));
      result.Set("cost", Json::MakeNumber(searched->best_cost));
      result.Set("improvement", Json::MakeNumber(searched->Improvement()));
      result.Set("rounds",
                 Json::MakeNumber(searched->stats.rounds));
      result.Set("evaluated",
                 Json::MakeNumber(searched->stats.evaluated));
      result.Set("accepted",
                 Json::MakeNumber(searched->stats.accepted));
      result.Set("uphill_accepted",
                 Json::MakeNumber(searched->stats.uphill_accepted));
      result.Set("min_delay",
                 Json::MakeNumber(searched->best_stats.min_delay));
      result.Set("max_delay",
                 Json::MakeNumber(searched->best_stats.max_delay));
      result.Set("seconds",
                 Json::MakeNumber(opt_.deterministic
                                      ? 0.0
                                      : searched->stats.seconds));
      Json resp = OkResponse(req.id);
      resp.Set("result", std::move(result));
      out = std::move(resp);
      break;
    }
    case ServeOp::kQuery: {
      Json result = Json::MakeObject();
      result.Set("sinks", Json::MakeNumber(session->NumSinks()));
      result.Set("feasible", Json::MakeBool(session->Feasible()));
      result.Set("cost", Json::MakeNumber(session->Last().cost));
      result.Set("min_delay",
                 Json::MakeNumber(session->Last().stats.min_delay));
      result.Set("max_delay",
                 Json::MakeNumber(session->Last().stats.max_delay));
      result.Set("lp_rows", Json::MakeNumber(session->NumLpRows()));
      if (req.want_tree && session->Feasible()) {
        result.Set("tree",
                   Json::MakeString(FormatTreeSolution(session->Solution())));
      }
      Json resp = OkResponse(req.id);
      resp.Set("result", std::move(result));
      out = std::move(resp);
      break;
    }
    default:
      out = ErrorResponse(req.id, Status::Internal("unroutable session op"));
      break;
  }
  cache_.Release(req.session);
  return out;
}

Json Dispatcher::ExecuteStats(const ServeRequest& req) {
  const SessionCacheStats cache_stats = cache_.Stats();
  DispatcherStats mine;
  bool shutting_down;
  {
    MutexLock lock(mu_);
    mine = stats_;
    shutting_down = shutdown_;
  }
  Json result = Json::MakeObject();
  result.Set("requests", Json::MakeNumber(static_cast<double>(mine.requests)));
  result.Set("rejected", Json::MakeNumber(static_cast<double>(mine.rejected)));
  result.Set("sessions_resident", Json::MakeNumber(cache_stats.resident));
  result.Set("sessions_spilled", Json::MakeNumber(cache_stats.spilled));
  result.Set("sessions_known", Json::MakeNumber(cache_stats.known));
  result.Set("evictions",
             Json::MakeNumber(static_cast<double>(cache_stats.evictions)));
  result.Set("restores",
             Json::MakeNumber(static_cast<double>(cache_stats.restores)));
  result.Set("eviction_failures",
             Json::MakeNumber(
                 static_cast<double>(cache_stats.eviction_failures)));
  result.Set("pending_jobs", Json::MakeNumber(pool_.PendingJobs()));
  result.Set("shutting_down", Json::MakeBool(shutting_down));
  Json resp = OkResponse(req.id);
  resp.Set("result", std::move(result));
  return resp;
}

}  // namespace lubt
