#include "serve/framing.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

namespace lubt {

void AppendFrame(std::string_view payload, std::string* out) {
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  out->push_back(static_cast<char>((n >> 24) & 0xFF));
  out->push_back(static_cast<char>((n >> 16) & 0xFF));
  out->push_back(static_cast<char>((n >> 8) & 0xFF));
  out->push_back(static_cast<char>(n & 0xFF));
  out->append(payload);
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (poisoned_) return;
  // Compact the consumed prefix before it dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

FrameDecoder::Event FrameDecoder::Next(std::string* payload) {
  if (poisoned_) return Event::kBad;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return Event::kNeedMore;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const std::uint32_t n = (static_cast<std::uint32_t>(p[0]) << 24) |
                          (static_cast<std::uint32_t>(p[1]) << 16) |
                          (static_cast<std::uint32_t>(p[2]) << 8) |
                          static_cast<std::uint32_t>(p[3]);
  if (n > kMaxFramePayload) {
    poisoned_ = true;
    error_ = Status::InvalidArgument(
        "frame length " + std::to_string(n) + " exceeds the " +
        std::to_string(kMaxFramePayload) + "-byte limit");
    buffer_.clear();
    consumed_ = 0;
    return Event::kBad;
  }
  if (available < 4 + static_cast<std::size_t>(n)) return Event::kNeedMore;
  payload->assign(buffer_, consumed_ + 4, n);
  consumed_ += 4 + static_cast<std::size_t>(n);
  return Event::kFrame;
}

Status WriteAllFd(int fd, std::string_view bytes) {
  std::size_t off = 0;
  bool use_send = true;
  while (off < bytes.size()) {
    ssize_t n;
    if (use_send) {
      // lubt-lint: allow(serve-raw-io) — the one sanctioned send() loop
      n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        use_send = false;  // pipe/regular fd (loopback mode): plain write
        continue;
      }
    } else {
      // lubt-lint: allow(serve-raw-io) — the one sanctioned write() loop
      n = ::write(fd, bytes.data() + off, bytes.size() - off);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write failed: ") +
                              std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> ReadSomeFd(int fd, std::size_t max_bytes) {
  std::string out;
  out.resize(max_bytes);
  for (;;) {
    // lubt-lint: allow(serve-raw-io) — the one sanctioned read() loop
    const ssize_t n = ::read(fd, out.data(), out.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("read failed: ") +
                              std::strerror(errno));
    }
    out.resize(static_cast<std::size_t>(n));
    return out;
  }
}

Status WriteFrameFd(int fd, std::string_view payload) {
  std::string framed;
  framed.reserve(payload.size() + 4);
  AppendFrame(payload, &framed);
  return WriteAllFd(fd, framed);
}

Result<std::string> ReadFrameFd(int fd, FrameDecoder* decoder) {
  for (;;) {
    std::string payload;
    switch (decoder->Next(&payload)) {
      case FrameDecoder::Event::kFrame:
        return payload;
      case FrameDecoder::Event::kBad:
        return decoder->Error();
      case FrameDecoder::Event::kNeedMore:
        break;
    }
    Result<std::string> chunk = ReadSomeFd(fd, 64 << 10);
    if (!chunk.ok()) return chunk.status();
    if (chunk->empty()) {
      if (decoder->BufferedBytes() == 0) {
        return Status::NotFound("clean end of stream");
      }
      return Status::InvalidArgument("end of stream inside a frame");
    }
    decoder->Feed(*chunk);
  }
}

}  // namespace lubt
