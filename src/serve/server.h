// Socket front-end for lubt_server: accept loop + per-connection framing.
//
// The server owns the transport and nothing else: it listens on a Unix
// socket or a loopback TCP port, reads length-prefixed frames off each
// connection (serve/framing.h), and forwards every payload to the
// Dispatcher, whose response callback writes the reply frame back under a
// per-connection write mutex (responses for one connection may be produced
// concurrently by different sessions' strands; the mutex keeps frames from
// interleaving mid-write).
//
// Connection handling is thread-per-connection with blocking I/O — the
// simplest model that lets the kernel do the waiting, and the expected
// client count (EDA tools driving ECO loops) is small. Poisoned framing
// (oversized length) gets a best-effort error frame, then the connection
// closes; the stream has no recovery point.
//
// Shutdown sequencing (the subtle part):
//  1. a shutdown request is answered by the dispatcher FIRST, then the
//     dispatcher's hook calls Server::Shutdown();
//  2. Shutdown() half-closes the listen socket, unblocking accept();
//  3. Run() then half-closes every connection, unblocking their reads, and
//     joins the connection threads;
//  4. responses still in flight on pool workers write to half-closed
//     sockets and get EPIPE back as a Status — ignored, never a signal.

#ifndef LUBT_SERVE_SERVER_H_
#define LUBT_SERVE_SERVER_H_

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "check/mutex.h"
#include "check/thread_annotations.h"
#include "serve/dispatcher.h"
#include "util/status.h"

namespace lubt {

struct ServerOptions {
  /// Unix-domain socket path; takes precedence when non-empty. An existing
  /// socket file at the path is replaced.
  std::string unix_path;
  /// Loopback TCP port; 0 picks an ephemeral port (see Port()). Used only
  /// when unix_path is empty; -1 disables.
  int tcp_port = -1;
};

class Server {
 public:
  /// Bind + listen. The dispatcher must outlive the server; its shutdown
  /// hook is installed here.
  static Result<std::unique_ptr<Server>> Listen(const ServerOptions& options,
                                                Dispatcher* dispatcher);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept loop; returns after Shutdown() once every connection thread is
  /// joined.
  void Run();

  /// Stop accepting and unblock Run(). Thread-safe, idempotent.
  void Shutdown();

  /// The bound TCP port (meaningful after Listen with tcp_port >= 0).
  int Port() const { return port_; }

 private:
  struct Conn {
    int fd = -1;
    Mutex write_mu;  // serializes response frames on this connection
  };

  Server() = default;

  void ConnLoop(const std::shared_ptr<Conn>& conn);

  int listen_fd_ = -1;
  int port_ = -1;
  std::string unix_path_;  // unlinked on destruction
  Dispatcher* dispatcher_ = nullptr;

  Mutex mu_;
  bool shutdown_ LUBT_GUARDED_BY(mu_) = false;
  std::vector<std::shared_ptr<Conn>> conns_ LUBT_GUARDED_BY(mu_);
  std::vector<std::thread> threads_ LUBT_GUARDED_BY(mu_);
};

}  // namespace lubt

#endif  // LUBT_SERVE_SERVER_H_
