// Request dispatcher: protocol execution over the session cache.
//
// The dispatcher is the transport-independent core of lubt_server: it takes
// one raw request payload, parses it (serve/protocol.h), routes session ops
// onto the target session's strand, executes against the cached EcoSession
// (serve/session_cache.h), and hands the serialized response to a caller-
// supplied sink. The socket server (serve/server.h) and the --once loopback
// mode (tools/lubt_server.cpp) are both thin shells around it, which is
// what makes the golden request/response tests transport-free.
//
// Threading contract:
//  * Handle() may be called from any thread; the response callback runs
//    either inline (parse errors, admission rejects, stats/shutdown) or on
//    a pool worker (session ops), exactly once either way. Callbacks must
//    be thread-safe against each other — the server serializes per-
//    connection writes with a per-connection mutex.
//  * Per-session ordering: requests for one session name execute in
//    Handle() call order (strand FIFO). Requests for different sessions
//    run concurrently up to the pool width.
//  * Admission control: beyond `max_pending` queued jobs — or after a
//    shutdown request — new work is rejected immediately with UNAVAILABLE
//    rather than queued without bound.
//
// Destruction drains the pool first (the ThreadPool member is declared
// last), so in-flight jobs finish against a live cache; their responses go
// to whatever sink they captured.

#ifndef LUBT_SERVE_DISPATCHER_H_
#define LUBT_SERVE_DISPATCHER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "check/mutex.h"
#include "check/thread_annotations.h"
#include "runtime/thread_pool.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/session_cache.h"

namespace lubt {

struct DispatcherOptions {
  /// Worker threads; 0 means one per hardware thread.
  int jobs = 0;
  /// Reject new requests when this many jobs are already pending (0 = no
  /// limit).
  int max_pending = 256;
  /// Zero wall-clock fields in responses (golden tests / --deterministic).
  bool deterministic = false;
  /// Session cache budgets + spill directory (spill_dir must exist).
  SessionCacheOptions cache;
};

struct DispatcherStats {
  std::uint64_t requests = 0;
  std::uint64_t rejected = 0;  ///< admission-control UNAVAILABLE responses
};

class Dispatcher {
 public:
  explicit Dispatcher(DispatcherOptions options);

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Process one request payload; `respond` receives the serialized
  /// response exactly once (see the threading contract above).
  void Handle(std::string payload,
              std::function<void(std::string)> respond);

  /// Synchronous convenience for loopback mode and tests: Handle + wait.
  /// Must not be called from a pool worker (it would wait on itself).
  std::string HandleSync(const std::string& payload);

  /// True once a shutdown request has been accepted.
  bool ShutdownRequested() LUBT_EXCLUDES(mu_);

  /// Hook invoked (once) after a shutdown response has been handed to its
  /// sink; the socket server uses it to stop the accept loop.
  void SetShutdownHook(std::function<void()> hook) LUBT_EXCLUDES(mu_);

 private:
  Json Execute(const ServeRequest& request);
  Json ExecuteOpenSession(const ServeRequest& request);
  Json ExecuteSessionOp(const ServeRequest& request);
  Json ExecuteStats(const ServeRequest& request);

  const DispatcherOptions opt_;
  Mutex mu_;
  bool shutdown_ LUBT_GUARDED_BY(mu_) = false;
  std::function<void()> shutdown_hook_ LUBT_GUARDED_BY(mu_);
  DispatcherStats stats_ LUBT_GUARDED_BY(mu_);
  // Order matters: the pool must be destroyed before the cache (jobs touch
  // it) — members are destroyed in reverse declaration order, so the pool
  // is declared after everything its jobs reference.
  SessionCache cache_;
  ThreadPool pool_;

  // The cache needs the pool pointer at construction; this helper builds
  // them in the right order.
  static int ResolveJobs(int jobs);
};

}  // namespace lubt

#endif  // LUBT_SERVE_DISPATCHER_H_
