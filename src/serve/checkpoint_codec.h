// Bitwise-faithful text codec for EcoCheckpoint (eco/checkpoint.h).
//
// The session cache spills evicted sessions to disk and must get the exact
// same doubles back — the restored-session ≡ never-evicted-session contract
// is *bitwise*, so ordinary decimal formatting (which rounds) is ruled out.
// Every floating-point value is therefore written as a C99 hexadecimal
// float literal (printf %a), which round-trips any finite double exactly
// and also carries inf (the library's kLpInf upper bounds) and the sign of
// zero. Everything else is a line-oriented tagged text format in the same
// family as io/sink_set.h and io/tree_io.h — greppable spill files beat an
// ad-hoc binary layout for debugging, and the cost is paid only on
// eviction, never on the hot path.
//
// Decode validates structure before touching the topology builder (which
// asserts on malformed arenas): a corrupt or truncated spill file yields an
// InvalidArgument, never an abort. The full corrupt-input matrix lives in
// tests/checkpoint_test.cpp.

#ifndef LUBT_SERVE_CHECKPOINT_CODEC_H_
#define LUBT_SERVE_CHECKPOINT_CODEC_H_

#include <string>

#include "eco/checkpoint.h"
#include "util/status.h"

namespace lubt {

/// Serialize a checkpoint. Output round-trips bitwise through
/// DecodeCheckpoint (enforced by tests over randomized sessions).
std::string EncodeCheckpoint(const EcoCheckpoint& checkpoint);

/// Parse EncodeCheckpoint's format. Structural validation only — semantic
/// validation (topology/sink agreement, pair ranges, vector arities)
/// belongs to EcoSession::Restore.
Result<EcoCheckpoint> DecodeCheckpoint(const std::string& text);

/// File convenience wrappers for the session cache's spill directory.
Status StoreCheckpoint(const EcoCheckpoint& checkpoint,
                       const std::string& path);
Result<EcoCheckpoint> LoadCheckpoint(const std::string& path);

/// Rough resident-memory footprint of the session a checkpoint describes,
/// in bytes — the session cache's budget currency. An estimate (the LP
/// model and symbolic factorization are reconstructed, not captured), but a
/// monotone one: bigger instances cost more.
std::size_t ApproxSessionBytes(const EcoCheckpoint& checkpoint);

}  // namespace lubt

#endif  // LUBT_SERVE_CHECKPOINT_CODEC_H_
