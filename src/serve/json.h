// Minimal JSON value for the lubt_server wire protocol (DESIGN.md §15).
//
// Self-contained — no external dependency — and deliberately small: the
// protocol uses objects, arrays, strings, numbers, booleans and null, and
// nothing else. Two properties matter more than generality:
//
//  * determinism: objects preserve insertion order (stored as an ordered
//    key/value vector, not a hash map), and Dump() emits a canonical
//    compact form — byte-identical output for equal construction sequences,
//    which the golden request/response tests rely on;
//  * robustness: Parse() is a strict recursive-descent parser with a depth
//    limit, so adversarial input (garbage bytes, deeply nested arrays)
//    yields an InvalidArgument instead of UB or unbounded recursion.
//
// Numbers are doubles. Dump() prints integral values in [-2^53, 2^53] as
// integers and everything else with %.17g (round-trip precision). JSON has
// no infinity literal; protocol fields that can be infinite (delay-window
// highs) are transported as the string "inf" by the protocol layer, not
// here.

#ifndef LUBT_SERVE_JSON_H_
#define LUBT_SERVE_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace lubt {

/// One JSON value (recursive).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}

  static Json MakeNull() { return Json(); }
  static Json MakeBool(bool b);
  static Json MakeNumber(double v);
  static Json MakeString(std::string s);
  static Json MakeArray();
  static Json MakeObject();

  Type type() const { return type_; }
  bool IsNull() const { return type_ == Type::kNull; }
  bool IsBool() const { return type_ == Type::kBool; }
  bool IsNumber() const { return type_ == Type::kNumber; }
  bool IsString() const { return type_ == Type::kString; }
  bool IsArray() const { return type_ == Type::kArray; }
  bool IsObject() const { return type_ == Type::kObject; }

  /// Typed accessors; the value must hold the matching type (LUBT_ASSERT).
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;

  /// Array access. Size() is 0 for non-arrays/objects.
  std::size_t Size() const;
  const Json& At(std::size_t i) const;
  void Append(Json v);

  /// Object access: Find returns nullptr when the key is absent; Set
  /// overwrites an existing key in place (order preserved) or appends.
  const Json* Find(std::string_view key) const;
  void Set(std::string key, Json value);
  const std::vector<std::pair<std::string, Json>>& Items() const {
    return object_;
  }

  /// Canonical compact serialization (no whitespace, keys in stored order).
  std::string Dump() const;

  /// Strict parse of exactly one JSON value spanning the whole input
  /// (trailing non-whitespace is an error). Depth-limited.
  static Result<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace lubt

#endif  // LUBT_SERVE_JSON_H_
