#include "serve/protocol.h"

#include <cmath>
#include <utility>

#include "cts/metrics.h"
#include "lp/model.h"

namespace lubt {
namespace {

Status FieldError(const char* op, const std::string& what) {
  return Status::InvalidArgument(std::string(op) + ": " + what);
}

Result<std::string> GetStringField(const Json& obj, const char* op,
                                   const char* key) {
  const Json* v = obj.Find(key);
  if (v == nullptr || !v->IsString()) {
    return FieldError(op, std::string("'") + key + "' must be a string");
  }
  return v->AsString();
}

// A coordinate pair [x, y] of finite numbers.
Result<Point> ParsePointField(const Json& v, const char* op,
                              const char* key) {
  if (!v.IsArray() || v.Size() != 2 || !v.At(0).IsNumber() ||
      !v.At(1).IsNumber()) {
    return FieldError(op, std::string("'") + key + "' must be [x, y]");
  }
  const Point p{v.At(0).AsNumber(), v.At(1).AsNumber()};
  if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
    return FieldError(op, std::string("'") + key + "' must be finite");
  }
  return p;
}

// A window bound: a number, or the string "inf" for an unbounded high.
Result<double> ParseBoundValue(const Json& v, const char* op,
                               const char* key) {
  if (v.IsNumber()) return v.AsNumber();
  if (v.IsString() && v.AsString() == "inf") return kLpInf;
  return FieldError(op, std::string("'") + key +
                            "' entries must be numbers or \"inf\"");
}

Status ParseOpenSession(const Json& obj, ServeRequest* out) {
  constexpr const char* kOp = "open_session";
  const Json* sinks = obj.Find("sinks");
  if (sinks == nullptr || !sinks->IsArray() || sinks->Size() == 0) {
    return FieldError(kOp, "'sinks' must be a non-empty array of [x, y]");
  }
  out->set.name = out->session;
  out->set.sinks.reserve(sinks->Size());
  for (std::size_t i = 0; i < sinks->Size(); ++i) {
    Result<Point> p = ParsePointField(sinks->At(i), kOp, "sinks");
    if (!p.ok()) return p.status();
    out->set.sinks.push_back(*p);
  }
  if (const Json* source = obj.Find("source"); source != nullptr) {
    Result<Point> p = ParsePointField(*source, kOp, "source");
    if (!p.ok()) return p.status();
    out->set.source = *p;
  }

  const Json* bounds = obj.Find("bounds");
  const Json* window = obj.Find("window");
  if ((bounds != nullptr) == (window != nullptr)) {
    return FieldError(kOp, "exactly one of 'bounds' and 'window' required");
  }
  if (bounds != nullptr) {
    if (!bounds->IsArray() || bounds->Size() != out->set.sinks.size()) {
      return FieldError(kOp, "'bounds' must list [lo, hi] per sink");
    }
    out->bounds.reserve(bounds->Size());
    for (std::size_t i = 0; i < bounds->Size(); ++i) {
      const Json& b = bounds->At(i);
      if (!b.IsArray() || b.Size() != 2) {
        return FieldError(kOp, "'bounds' must list [lo, hi] per sink");
      }
      Result<double> lo = ParseBoundValue(b.At(0), kOp, "bounds");
      if (!lo.ok()) return lo.status();
      Result<double> hi = ParseBoundValue(b.At(1), kOp, "bounds");
      if (!hi.ok()) return hi.status();
      out->bounds.push_back(DelayBounds{*lo, *hi});
    }
  } else {
    if (!window->IsArray() || window->Size() != 2) {
      return FieldError(kOp, "'window' must be [lo, hi] in radius units");
    }
    Result<double> lo = ParseBoundValue(window->At(0), kOp, "window");
    if (!lo.ok()) return lo.status();
    Result<double> hi = ParseBoundValue(window->At(1), kOp, "window");
    if (!hi.ok()) return hi.status();
    const double radius = Radius(out->set.sinks, out->set.source);
    out->bounds.assign(out->set.sinks.size(),
                       DelayBounds{*lo * radius, std::isfinite(*hi)
                                                     ? *hi * radius
                                                     : kLpInf});
  }
  return Status::Ok();
}

Status ParseEcoEdit(const Json& obj, ServeRequest* out) {
  Result<std::string> script = GetStringField(obj, "eco_edit", "script");
  if (!script.ok()) return script.status();
  Result<std::vector<EcoEdit>> edits = ParseEditScript(*script);
  if (!edits.ok()) return edits.status();
  if (edits->empty()) {
    return FieldError("eco_edit", "'script' contains no edits");
  }
  out->edits = std::move(*edits);
  return Status::Ok();
}

Status ParseOptimize(const Json& obj, ServeRequest* out) {
  const Json* rounds = obj.Find("rounds");
  if (rounds == nullptr || !rounds->IsNumber()) {
    return FieldError("optimize", "'rounds' must be a positive number");
  }
  const double r = rounds->AsNumber();
  if (!(r >= 1.0) || r > 1e6) {
    return FieldError("optimize", "'rounds' must be in [1, 1e6]");
  }
  out->opt_rounds = static_cast<int>(r);
  if (const Json* seed = obj.Find("seed"); seed != nullptr) {
    if (!seed->IsNumber() || seed->AsNumber() < 0.0) {
      return FieldError("optimize", "'seed' must be a non-negative number");
    }
    out->opt_seed = static_cast<std::uint64_t>(seed->AsNumber());
  }
  return Status::Ok();
}

}  // namespace

const char* ServeOpName(ServeOp op) {
  switch (op) {
    case ServeOp::kOpenSession:
      return "open_session";
    case ServeOp::kSolve:
      return "solve";
    case ServeOp::kEcoEdit:
      return "eco_edit";
    case ServeOp::kQuery:
      return "query";
    case ServeOp::kOptimize:
      return "optimize";
    case ServeOp::kCloseSession:
      return "close_session";
    case ServeOp::kStats:
      return "stats";
    case ServeOp::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

Result<ServeRequest> ParseServeRequest(const std::string& payload) {
  Result<Json> parsed = Json::Parse(payload);
  if (!parsed.ok()) return parsed.status();
  const Json& obj = *parsed;
  if (!obj.IsObject()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  ServeRequest req;
  if (const Json* id = obj.Find("id"); id != nullptr) {
    if (!id->IsNumber()) {
      return Status::InvalidArgument("'id' must be a number");
    }
    req.id = id->AsNumber();
  }

  Result<std::string> op = GetStringField(obj, "request", "op");
  if (!op.ok()) return op.status();
  const std::string& name = *op;
  if (name == "open_session") {
    req.op = ServeOp::kOpenSession;
  } else if (name == "solve") {
    req.op = ServeOp::kSolve;
  } else if (name == "eco_edit") {
    req.op = ServeOp::kEcoEdit;
  } else if (name == "query") {
    req.op = ServeOp::kQuery;
  } else if (name == "optimize") {
    req.op = ServeOp::kOptimize;
  } else if (name == "close_session") {
    req.op = ServeOp::kCloseSession;
  } else if (name == "stats") {
    req.op = ServeOp::kStats;
  } else if (name == "shutdown") {
    req.op = ServeOp::kShutdown;
  } else {
    return Status::InvalidArgument("unknown op '" + name + "'");
  }

  if (req.op != ServeOp::kStats && req.op != ServeOp::kShutdown) {
    Result<std::string> session = GetStringField(obj, name.c_str(), "session");
    if (!session.ok()) return session.status();
    if (session->empty()) {
      return Status::InvalidArgument(name + ": 'session' must be non-empty");
    }
    req.session = *session;
  }

  switch (req.op) {
    case ServeOp::kOpenSession:
      LUBT_RETURN_IF_ERROR(ParseOpenSession(obj, &req));
      break;
    case ServeOp::kEcoEdit:
      LUBT_RETURN_IF_ERROR(ParseEcoEdit(obj, &req));
      break;
    case ServeOp::kOptimize:
      LUBT_RETURN_IF_ERROR(ParseOptimize(obj, &req));
      break;
    case ServeOp::kQuery:
      if (const Json* tree = obj.Find("tree"); tree != nullptr) {
        if (!tree->IsBool()) {
          return Status::InvalidArgument("query: 'tree' must be a boolean");
        }
        req.want_tree = tree->AsBool();
      }
      break;
    default:
      break;
  }
  return req;
}

Json OkResponse(const std::optional<double>& id) {
  Json out = Json::MakeObject();
  if (id.has_value()) out.Set("id", Json::MakeNumber(*id));
  out.Set("ok", Json::MakeBool(true));
  out.Set("result", Json::MakeObject());
  return out;
}

Json ErrorResponse(const std::optional<double>& id, const Status& error) {
  Json out = Json::MakeObject();
  if (id.has_value()) out.Set("id", Json::MakeNumber(*id));
  out.Set("ok", Json::MakeBool(false));
  Json err = Json::MakeObject();
  err.Set("code", Json::MakeString(StatusCodeName(error.code())));
  err.Set("message", Json::MakeString(error.message()));
  out.Set("error", std::move(err));
  return out;
}

Json SolveInfoJson(const EcoSolveInfo& info, bool deterministic) {
  Json out = Json::MakeObject();
  out.Set("status", Json::MakeString(StatusCodeName(info.status.code())));
  out.Set("tier", Json::MakeString(EcoTierName(info.tier)));
  out.Set("cost", Json::MakeNumber(info.cost));
  out.Set("min_delay", Json::MakeNumber(info.stats.min_delay));
  out.Set("max_delay", Json::MakeNumber(info.stats.max_delay));
  out.Set("lp_rows", Json::MakeNumber(info.lp_rows));
  out.Set("lp_iterations", Json::MakeNumber(info.lp_iterations));
  out.Set("lazy_rounds", Json::MakeNumber(info.lazy_rounds));
  out.Set("rows_added", Json::MakeNumber(info.rows_added));
  out.Set("rows_refreshed", Json::MakeNumber(info.rows_refreshed));
  out.Set("warm_started", Json::MakeBool(info.warm_started));
  out.Set("seconds", Json::MakeNumber(deterministic ? 0.0 : info.seconds));
  return out;
}

}  // namespace lubt
