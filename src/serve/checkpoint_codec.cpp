#include "serve/checkpoint_codec.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace lubt {
namespace {

// %a prints the shortest exact hex literal; strtod parses it back to the
// identical bit pattern (and handles "inf"/"-inf" for the kLpInf bounds).
std::string HexDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

bool ParseHexDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

class LineReader {
 public:
  explicit LineReader(const std::string& text) : in_(text) {}

  /// Next non-empty line; false at end of input.
  bool Next(std::string* line) {
    while (std::getline(in_, *line)) {
      ++line_no_;
      if (!line->empty()) return true;
    }
    return false;
  }

  int line_no() const { return line_no_; }

 private:
  std::istringstream in_;
  int line_no_ = 0;
};

struct Decoder {
  LineReader reader;
  std::string line;

  explicit Decoder(const std::string& text) : reader(text) {}

  Status Fail(const std::string& what) {
    return Status::InvalidArgument("checkpoint line " +
                                   std::to_string(reader.line_no()) + ": " +
                                   what);
  }

  /// Read the next line and require tag + exactly the rest parsed by `body`.
  Status Expect(const std::string& tag, std::istringstream* rest) {
    if (!reader.Next(&line)) return Fail("truncated: expected '" + tag + "'");
    std::istringstream ls(line);
    std::string got;
    ls >> got;
    if (got != tag) return Fail("expected '" + tag + "', got '" + got + "'");
    std::string remainder;
    std::getline(ls, remainder);
    rest->str(remainder);
    rest->clear();
    return Status::Ok();
  }

  Status ReadHex(std::istringstream& ls, const char* what, double* out) {
    std::string token;
    if (!(ls >> token) || !ParseHexDouble(token, out)) {
      return Fail(std::string("malformed float for ") + what);
    }
    return Status::Ok();
  }

  Status ReadDoubleBlock(const std::string& tag, std::vector<double>* out) {
    std::istringstream head;
    LUBT_RETURN_IF_ERROR(Expect(tag, &head));
    long long count = -1;
    if (!(head >> count) || count < 0 || count > (1LL << 28)) {
      return Fail("bad count for '" + tag + "'");
    }
    out->clear();
    out->reserve(static_cast<std::size_t>(count));
    for (long long i = 0; i < count; ++i) {
      std::istringstream ls;
      LUBT_RETURN_IF_ERROR(Expect("v", &ls));
      double v = 0.0;
      LUBT_RETURN_IF_ERROR(ReadHex(ls, tag.c_str(), &v));
      out->push_back(v);
    }
    return Status::Ok();
  }
};

// Rebuild a Topology by replaying nodes in id order, with the same
// pre-validation as io/tree_io.cpp so the builder's asserts can't fire on
// corrupt input.
Status ReplayTopology(const std::vector<std::array<std::int32_t, 3>>& raw,
                      std::int32_t root, RootMode mode, Topology* out) {
  const auto n = static_cast<std::int32_t>(raw.size());
  if (n == 0) return Status::InvalidArgument("checkpoint: topology empty");
  for (std::int32_t id = 0; id < n; ++id) {
    const std::int32_t left = raw[static_cast<std::size_t>(id)][0];
    const std::int32_t right = raw[static_cast<std::size_t>(id)][1];
    const std::int32_t sink = raw[static_cast<std::size_t>(id)][2];
    if (left == kInvalidNode && right == kInvalidNode) {
      if (sink < 0) {
        return Status::InvalidArgument("checkpoint: leaf node " +
                                       std::to_string(id) + " without sink");
      }
      out->AddSinkNode(sink);
    } else if (right == kInvalidNode) {
      if (left < 0 || left >= id || out->Parent(left) != kInvalidNode) {
        return Status::InvalidArgument(
            "checkpoint: bad unary child of node " + std::to_string(id));
      }
      out->AddUnaryNode(left);
    } else {
      if (left < 0 || left >= id || right < 0 || right >= id ||
          left == right || out->Parent(left) != kInvalidNode ||
          out->Parent(right) != kInvalidNode) {
        return Status::InvalidArgument(
            "checkpoint: bad children of node " + std::to_string(id));
      }
      out->AddInternalNode(left, right);
    }
  }
  if (root < 0 || root >= n || out->Parent(root) != kInvalidNode) {
    return Status::InvalidArgument("checkpoint: bad root id");
  }
  if (mode == RootMode::kFixedSource) {
    const TopoNode& r = out->Node(root);
    if (r.left == kInvalidNode || r.right != kInvalidNode || r.sink >= 0) {
      return Status::InvalidArgument(
          "checkpoint: fixed-source root must be unary Steiner");
    }
  }
  out->SetRoot(root, mode);
  return Status::Ok();
}

void AppendDoubleBlock(const std::string& tag,
                       const std::vector<double>& values, std::string* out) {
  out->append(tag);
  out->push_back(' ');
  out->append(std::to_string(values.size()));
  out->push_back('\n');
  for (const double v : values) {
    out->append("v ");
    out->append(HexDouble(v));
    out->push_back('\n');
  }
}

// The two free-text fields (instance name, status message) are single-line
// by construction everywhere in the library, but a hostile client can put
// anything in a session name — fold line breaks so they cannot corrupt the
// line-oriented format.
std::string OneLine(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

}  // namespace

std::string EncodeCheckpoint(const EcoCheckpoint& ck) {
  std::string out;
  out.reserve(256 + 96 * ck.set.sinks.size() +
              48 * static_cast<std::size_t>(ck.topo.NumNodes()));
  out.append("lubt-checkpoint v1\n");
  out.append("name ").append(OneLine(ck.set.name)).push_back('\n');
  if (ck.set.source.has_value()) {
    out.append("source 1 ")
        .append(HexDouble(ck.set.source->x))
        .append(" ")
        .append(HexDouble(ck.set.source->y))
        .push_back('\n');
  } else {
    out.append("source 0\n");
  }
  out.append("radius ").append(HexDouble(ck.initial_radius)).push_back('\n');
  out.append("sinks ").append(std::to_string(ck.set.sinks.size()));
  out.push_back('\n');
  for (const Point& p : ck.set.sinks) {
    out.append("s ")
        .append(HexDouble(p.x))
        .append(" ")
        .append(HexDouble(p.y))
        .push_back('\n');
  }
  for (const DelayBounds& b : ck.bounds) {
    out.append("b ")
        .append(HexDouble(b.lo))
        .append(" ")
        .append(HexDouble(b.hi))
        .push_back('\n');
  }
  out.append(ck.topo.Mode() == RootMode::kFixedSource ? "mode fixed\n"
                                                      : "mode free\n");
  out.append("nodes ").append(std::to_string(ck.topo.NumNodes()));
  out.push_back('\n');
  for (NodeId id = 0; id < ck.topo.NumNodes(); ++id) {
    const TopoNode& node = ck.topo.Node(id);
    out.append("t ")
        .append(std::to_string(node.left))
        .append(" ")
        .append(std::to_string(node.right))
        .append(" ")
        .append(std::to_string(node.sink))
        .push_back('\n');
  }
  out.append("root ").append(std::to_string(ck.topo.Root())).push_back('\n');
  out.append("model ")
      .append(ck.has_model ? "1 " : "0 ")
      .append(HexDouble(ck.scale))
      .push_back('\n');
  out.append("pool ").append(std::to_string(ck.pool.size())).push_back('\n');
  for (const std::array<std::int32_t, 2>& pr : ck.pool) {
    out.append("p ")
        .append(std::to_string(pr[0]))
        .append(" ")
        .append(std::to_string(pr[1]))
        .push_back('\n');
  }
  out.append("state ")
      .append(ck.lp_valid ? "1 " : "0 ")
      .append(ck.needs_rebuild ? "1" : "0")
      .push_back('\n');
  AppendDoubleBlock("lpx", ck.lp_x, &out);
  AppendDoubleBlock("lpdual", ck.lp_dual, &out);
  AppendDoubleBlock("elen", ck.edge_len, &out);
  const EcoSolveInfo& last = ck.last;
  out.append("last ")
      .append(std::to_string(static_cast<int>(last.status.code())))
      .append(" ")
      .append(std::to_string(static_cast<int>(last.tier)))
      .append(" ")
      .append(last.warm_started ? "1 " : "0 ")
      .append(last.symbolic_reused ? "1 " : "0 ")
      .append(std::to_string(last.lp_rows))
      .append(" ")
      .append(std::to_string(last.lp_iterations))
      .append(" ")
      .append(std::to_string(last.lazy_rounds))
      .append(" ")
      .append(std::to_string(last.rows_added))
      .append(" ")
      .append(std::to_string(last.rows_refreshed))
      .append(" ")
      .append(std::to_string(last.cold_retries))
      .push_back('\n');
  out.append("lastf ")
      .append(HexDouble(last.cost))
      .append(" ")
      .append(HexDouble(last.objective))
      .append(" ")
      .append(HexDouble(last.stats.cost))
      .append(" ")
      .append(HexDouble(last.stats.min_delay))
      .append(" ")
      .append(HexDouble(last.stats.max_delay))
      .append(" ")
      .append(HexDouble(last.seconds))
      .push_back('\n');
  out.append("lastmsg ").append(OneLine(last.status.message()));
  out.push_back('\n');
  out.append("end\n");
  return out;
}

Result<EcoCheckpoint> DecodeCheckpoint(const std::string& text) {
  Decoder d(text);
  EcoCheckpoint ck;
  {
    std::istringstream ls;
    if (!d.reader.Next(&d.line) || d.line != "lubt-checkpoint v1") {
      return Status::InvalidArgument(
          "checkpoint: missing 'lubt-checkpoint v1' header");
    }
  }
  {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("name", &ls));
    std::string rest;
    std::getline(ls, rest);
    if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
    ck.set.name = rest;
  }
  {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("source", &ls));
    int has = 0;
    if (!(ls >> has) || has < 0 || has > 1) return d.Fail("bad source flag");
    if (has == 1) {
      Point p;
      LUBT_RETURN_IF_ERROR(d.ReadHex(ls, "source.x", &p.x));
      LUBT_RETURN_IF_ERROR(d.ReadHex(ls, "source.y", &p.y));
      ck.set.source = p;
    }
  }
  {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("radius", &ls));
    LUBT_RETURN_IF_ERROR(d.ReadHex(ls, "radius", &ck.initial_radius));
  }
  long long num_sinks = 0;
  {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("sinks", &ls));
    if (!(ls >> num_sinks) || num_sinks < 0 || num_sinks > (1LL << 24)) {
      return d.Fail("bad sink count");
    }
  }
  for (long long i = 0; i < num_sinks; ++i) {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("s", &ls));
    Point p;
    LUBT_RETURN_IF_ERROR(d.ReadHex(ls, "sink.x", &p.x));
    LUBT_RETURN_IF_ERROR(d.ReadHex(ls, "sink.y", &p.y));
    ck.set.sinks.push_back(p);
  }
  for (long long i = 0; i < num_sinks; ++i) {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("b", &ls));
    DelayBounds b;
    LUBT_RETURN_IF_ERROR(d.ReadHex(ls, "bound.lo", &b.lo));
    LUBT_RETURN_IF_ERROR(d.ReadHex(ls, "bound.hi", &b.hi));
    ck.bounds.push_back(b);
  }
  RootMode mode = RootMode::kFreeSource;
  {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("mode", &ls));
    std::string m;
    ls >> m;
    if (m == "fixed") {
      mode = RootMode::kFixedSource;
    } else if (m == "free") {
      mode = RootMode::kFreeSource;
    } else {
      return d.Fail("unknown mode '" + m + "'");
    }
  }
  long long num_nodes = 0;
  {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("nodes", &ls));
    if (!(ls >> num_nodes) || num_nodes < 1 || num_nodes > (1LL << 26)) {
      return d.Fail("bad node count");
    }
  }
  std::vector<std::array<std::int32_t, 3>> raw;
  raw.reserve(static_cast<std::size_t>(num_nodes));
  for (long long i = 0; i < num_nodes; ++i) {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("t", &ls));
    std::array<std::int32_t, 3> node{};
    if (!(ls >> node[0] >> node[1] >> node[2])) {
      return d.Fail("node requires left, right, sink");
    }
    raw.push_back(node);
  }
  std::int32_t root = -1;
  {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("root", &ls));
    if (!(ls >> root)) return d.Fail("root requires an id");
  }
  LUBT_RETURN_IF_ERROR(ReplayTopology(raw, root, mode, &ck.topo));
  {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("model", &ls));
    int has = 0;
    if (!(ls >> has) || has < 0 || has > 1) return d.Fail("bad model flag");
    ck.has_model = has == 1;
    LUBT_RETURN_IF_ERROR(d.ReadHex(ls, "scale", &ck.scale));
  }
  long long pool = 0;
  {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("pool", &ls));
    if (!(ls >> pool) || pool < 0 || pool > (1LL << 28)) {
      return d.Fail("bad pool count");
    }
  }
  for (long long i = 0; i < pool; ++i) {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("p", &ls));
    std::array<std::int32_t, 2> pr{};
    if (!(ls >> pr[0] >> pr[1])) return d.Fail("pair requires two indices");
    ck.pool.push_back(pr);
  }
  {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("state", &ls));
    int valid = 0;
    int rebuild = 0;
    if (!(ls >> valid >> rebuild) || valid < 0 || valid > 1 || rebuild < 0 ||
        rebuild > 1) {
      return d.Fail("bad state flags");
    }
    ck.lp_valid = valid == 1;
    ck.needs_rebuild = rebuild == 1;
  }
  LUBT_RETURN_IF_ERROR(d.ReadDoubleBlock("lpx", &ck.lp_x));
  LUBT_RETURN_IF_ERROR(d.ReadDoubleBlock("lpdual", &ck.lp_dual));
  LUBT_RETURN_IF_ERROR(d.ReadDoubleBlock("elen", &ck.edge_len));
  {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("last", &ls));
    int code = 0;
    int tier = 0;
    int warm = 0;
    int symb = 0;
    if (!(ls >> code >> tier >> warm >> symb >> ck.last.lp_rows >>
          ck.last.lp_iterations >> ck.last.lazy_rounds >>
          ck.last.rows_added >> ck.last.rows_refreshed >>
          ck.last.cold_retries)) {
      return d.Fail("bad last-solve record");
    }
    if (code < 0 || code > static_cast<int>(StatusCode::kUnavailable)) {
      return d.Fail("bad status code");
    }
    if (tier < 0 || tier > static_cast<int>(EcoTier::kColdRebuild)) {
      return d.Fail("bad tier");
    }
    ck.last.status = Status(static_cast<StatusCode>(code), "");
    ck.last.tier = static_cast<EcoTier>(tier);
    ck.last.warm_started = warm == 1;
    ck.last.symbolic_reused = symb == 1;
  }
  {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("lastf", &ls));
    LUBT_RETURN_IF_ERROR(d.ReadHex(ls, "last.cost", &ck.last.cost));
    LUBT_RETURN_IF_ERROR(d.ReadHex(ls, "last.objective", &ck.last.objective));
    LUBT_RETURN_IF_ERROR(d.ReadHex(ls, "last.stats.cost",
                                   &ck.last.stats.cost));
    LUBT_RETURN_IF_ERROR(
        d.ReadHex(ls, "last.stats.min", &ck.last.stats.min_delay));
    LUBT_RETURN_IF_ERROR(
        d.ReadHex(ls, "last.stats.max", &ck.last.stats.max_delay));
    LUBT_RETURN_IF_ERROR(d.ReadHex(ls, "last.seconds", &ck.last.seconds));
  }
  {
    if (!d.reader.Next(&d.line)) return d.Fail("truncated: expected lastmsg");
    if (d.line.rfind("lastmsg", 0) != 0) return d.Fail("expected 'lastmsg'");
    std::string msg = d.line.substr(7);
    if (!msg.empty() && msg.front() == ' ') msg.erase(0, 1);
    ck.last.status = Status(ck.last.status.code(), msg);
  }
  {
    std::istringstream ls;
    LUBT_RETURN_IF_ERROR(d.Expect("end", &ls));
  }
  // Anything after the end marker is damage (e.g. two checkpoints
  // concatenated by a partial overwrite) — refuse rather than guess.
  if (d.reader.Next(&d.line)) return d.Fail("trailing data after 'end'");
  return ck;
}

Status StoreCheckpoint(const EcoCheckpoint& checkpoint,
                       const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::NotFound("cannot write checkpoint: " + path);
  out << EncodeCheckpoint(checkpoint);
  out.close();
  if (!out) return Status::Internal("short write on checkpoint: " + path);
  return Status::Ok();
}

Result<EcoCheckpoint> LoadCheckpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot read checkpoint: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return DecodeCheckpoint(buf.str());
}

std::size_t ApproxSessionBytes(const EcoCheckpoint& ck) {
  const std::size_t m = ck.set.sinks.size();
  const std::size_t n = static_cast<std::size_t>(ck.topo.NumNodes());
  const std::size_t rows = m + ck.pool.size();
  // Instance + topology + solved vectors, plus the reconstructed model
  // (roughly: a delay row touches a root path, a Steiner row two paths) and
  // factorization working set. Coefficients are deliberately generous.
  return 4096 + 64 * m + 64 * n + 24 * ck.lp_x.size() +
         24 * ck.lp_dual.size() + 24 * ck.edge_len.size() + 160 * rows;
}

}  // namespace lubt
