// Closed real intervals with an explicit empty state.
//
// Intervals are the 1-D building block of TRR arithmetic: a TRR is the
// product of a u-interval and a v-interval, and every TRR operation in the
// paper (intersection, inflation, distance, the Helly argument of
// Lemma 10.1) decomposes into the per-axis interval operation.

#ifndef LUBT_GEOM_INTERVAL_H_
#define LUBT_GEOM_INTERVAL_H_

#include <algorithm>
#include <ostream>

namespace lubt {

/// A closed interval [lo, hi]; empty iff lo > hi.
struct Interval {
  double lo = 1.0;
  double hi = -1.0;  // default-constructed interval is empty

  /// The degenerate interval {x}.
  static Interval Singleton(double x) { return {x, x}; }

  /// The canonical empty interval.
  static Interval Empty() { return {1.0, -1.0}; }

  bool IsEmpty() const { return lo > hi; }
  double Length() const { return IsEmpty() ? 0.0 : hi - lo; }
  double Center() const { return 0.5 * (lo + hi); }

  bool Contains(double x, double tol = 0.0) const {
    return !IsEmpty() && x >= lo - tol && x <= hi + tol;
  }

  /// True if `other` lies inside this interval (empty is inside everything).
  bool Contains(const Interval& other, double tol = 0.0) const {
    if (other.IsEmpty()) return true;
    return !IsEmpty() && other.lo >= lo - tol && other.hi <= hi + tol;
  }

  /// Nearest point of the interval to x; requires non-empty.
  double Clamp(double x) const { return std::min(std::max(x, lo), hi); }

  /// Distance from x to the interval (0 if inside); requires non-empty.
  double DistTo(double x) const {
    if (x < lo) return lo - x;
    if (x > hi) return x - hi;
    return 0.0;
  }

  /// Grow by r >= 0 on both ends. Empty stays empty.
  Interval Inflate(double r) const {
    if (IsEmpty()) return Empty();
    return {lo - r, hi + r};
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    if (a.IsEmpty() && b.IsEmpty()) return true;
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// Intersection; empty if disjoint.
inline Interval Intersect(const Interval& a, const Interval& b) {
  if (a.IsEmpty() || b.IsEmpty()) return Interval::Empty();
  Interval r{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
  return r.IsEmpty() ? Interval::Empty() : r;
}

/// Gap between two non-empty intervals (0 when they touch/overlap).
inline double IntervalGap(const Interval& a, const Interval& b) {
  const double g = std::max(b.lo - a.hi, a.lo - b.hi);
  return g > 0.0 ? g : 0.0;
}

inline std::ostream& operator<<(std::ostream& os, const Interval& itv) {
  if (itv.IsEmpty()) return os << "[empty]";
  return os << '[' << itv.lo << ", " << itv.hi << ']';
}

}  // namespace lubt

#endif  // LUBT_GEOM_INTERVAL_H_
