#include "geom/segment.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace lubt {

std::vector<WireSegment> LRoute(const Point& from, const Point& to) {
  std::vector<WireSegment> out;
  if (from == to) return out;
  const Point corner{to.x, from.y};
  if (from.x != to.x) out.push_back({from, corner});
  if (from.y != to.y) out.push_back({corner, to});
  return out;
}

std::vector<WireSegment> SnakedRoute(const Point& from, const Point& to,
                                     double extra, double fold_pitch) {
  LUBT_ASSERT(extra >= -1e-9);
  extra = std::max(extra, 0.0);
  if (extra == 0.0) return LRoute(from, to);

  // Serpentine: go perpendicular by extra/2 and come back, then L-route.
  // Each fold adds 2 * amplitude of wire. With a positive fold pitch the
  // snake is split into several shallower folds stacked along x.
  std::vector<WireSegment> out;
  double remaining = extra;
  Point cur = from;
  const double amplitude_cap =
      fold_pitch > 0.0 ? fold_pitch : extra * 0.5;  // one deep fold by default
  int direction = 1;
  while (remaining > 1e-12) {
    const double amp = std::min(remaining * 0.5, amplitude_cap);
    const Point up{cur.x, cur.y + direction * amp};
    out.push_back({cur, up});
    out.push_back({up, cur});
    remaining -= 2.0 * amp;
    direction = -direction;
  }
  auto tail = LRoute(cur, to);
  out.insert(out.end(), tail.begin(), tail.end());
  return out;
}

double TotalLength(const std::vector<WireSegment>& segments) {
  double total = 0.0;
  for (const auto& s : segments) total += s.Length();
  return total;
}

}  // namespace lubt
