#include "geom/bbox.h"

#include <algorithm>

#include "util/status.h"

namespace lubt {

BBox::BBox(const Point& lo, const Point& hi) : empty_(false), lo_(lo), hi_(hi) {
  LUBT_ASSERT(lo.x <= hi.x && lo.y <= hi.y);
}

BBox BBox::Around(std::span<const Point> points) {
  BBox box;
  for (const Point& p : points) box.Expand(p);
  return box;
}

void BBox::Expand(const Point& p) {
  if (empty_) {
    lo_ = hi_ = p;
    empty_ = false;
    return;
  }
  lo_.x = std::min(lo_.x, p.x);
  lo_.y = std::min(lo_.y, p.y);
  hi_.x = std::max(hi_.x, p.x);
  hi_.y = std::max(hi_.y, p.y);
}

void BBox::Expand(const BBox& other) {
  if (other.empty_) return;
  Expand(other.lo_);
  Expand(other.hi_);
}

BBox BBox::Inflated(double margin) const {
  LUBT_ASSERT(margin >= 0.0);
  if (empty_) return BBox();
  return BBox({lo_.x - margin, lo_.y - margin},
              {hi_.x + margin, hi_.y + margin});
}

const Point& BBox::Lo() const {
  LUBT_ASSERT(!empty_);
  return lo_;
}

const Point& BBox::Hi() const {
  LUBT_ASSERT(!empty_);
  return hi_;
}

Point BBox::Center() const {
  LUBT_ASSERT(!empty_);
  return {0.5 * (lo_.x + hi_.x), 0.5 * (lo_.y + hi_.y)};
}

double BBox::Width() const {
  LUBT_ASSERT(!empty_);
  return hi_.x - lo_.x;
}

double BBox::Height() const {
  LUBT_ASSERT(!empty_);
  return hi_.y - lo_.y;
}

double BBox::HalfPerimeter() const { return Width() + Height(); }

bool BBox::Contains(const Point& p, double tol) const {
  if (empty_) return false;
  return p.x >= lo_.x - tol && p.x <= hi_.x + tol && p.y >= lo_.y - tol &&
         p.y <= hi_.y + tol;
}

}  // namespace lubt
