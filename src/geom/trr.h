// Tilted Rectangular Regions (TRRs) — Section 5 of the paper.
//
// A TRR is a rectangle rotated 45 degrees relative to the layout axes: the
// locus of points within a Manhattan-ball-like region. Representing TRRs in
// diagonal coordinates (u = x+y, v = y-x) turns them into axis-aligned boxes
// and the three operations the paper needs into interval arithmetic:
//
//   * TRR(R, r)      — all points within L1 distance r of R  = per-axis
//                      inflation by r (Figure 5-b),
//   * intersection   — per-axis interval intersection (Figure 5-c),
//   * dist(R1, R2)   — max of the per-axis interval gaps.
//
// The Helly property (Lemma 10.1: pairwise-intersecting TRRs share a common
// point) follows from the 1-D Helly theorem applied to each axis; it is what
// makes the LP's Steiner constraints *sufficient* for embeddability
// (Theorem 4.1).

#ifndef LUBT_GEOM_TRR_H_
#define LUBT_GEOM_TRR_H_

#include <algorithm>
#include <ostream>
#include <span>
#include <vector>

#include "geom/interval.h"
#include "geom/point.h"

namespace lubt {

/// A TRR as a box in diagonal coordinates. Degenerate widths (segments,
/// single points) are ordinary members of the type, as in the paper.
class Trr {
 public:
  /// Default: the empty region.
  Trr() = default;

  /// Construct from diagonal-coordinate intervals.
  Trr(Interval u, Interval v);

  /// The singleton region {p}.
  static Trr FromPoint(const Point& p);

  /// Square TRR: all points within L1 distance `radius` of `center`
  /// (the Manhattan "circle").
  static Trr Square(const Point& center, double radius);

  /// The canonical empty region.
  static Trr Empty() { return Trr(); }

  bool IsEmpty() const { return u_.IsEmpty() || v_.IsEmpty(); }

  /// True when the region is a single point.
  bool IsPoint() const;

  /// True when the region has zero area (segment or point).
  bool IsSegment() const;

  const Interval& U() const { return u_; }
  const Interval& V() const { return v_; }

  /// Geometric center (requires non-empty).
  Point Center() const;

  /// Side lengths in layout units: the tilted rectangle's two side lengths
  /// are Length(u)/sqrt(2) and Length(v)/sqrt(2); the paper's "width" is the
  /// smaller of the two. Requires non-empty.
  double Width() const;

  /// Membership with tolerance (L-infinity in diagonal coordinates, i.e.
  /// tolerance measured as Manhattan slack).
  bool Contains(const Point& p, double tol = 0.0) const;

  /// Whole-region containment.
  bool Contains(const Trr& other, double tol = 0.0) const;

  /// All points within L1 distance r >= 0 of this region (paper: TRR(R, r)).
  Trr Inflate(double r) const;

  /// Nearest point of the region to `p` in L1; requires non-empty.
  Point ClosestTo(const Point& p) const;

  /// L1 distance from p to the region (0 if inside); requires non-empty.
  double DistTo(const Point& p) const;

  friend bool operator==(const Trr& a, const Trr& b) {
    if (a.IsEmpty() && b.IsEmpty()) return true;
    return a.u_ == b.u_ && a.v_ == b.v_;
  }

 private:
  Interval u_ = Interval::Empty();
  Interval v_ = Interval::Empty();
};

/// Intersection of two TRRs (always a TRR — Figure 5-c).
Trr Intersect(const Trr& a, const Trr& b);

/// Intersection of many TRRs.
Trr IntersectAll(std::span<const Trr> regions);

/// Minimum L1 distance between two non-empty TRRs (0 when they intersect).
double TrrDist(const Trr& a, const Trr& b);

/// TrrDist over raw diagonal-interval bounds: a = [au_lo, au_hi] x
/// [av_lo, av_hi], b likewise, both non-empty. This is the kernel form for
/// SoA callers that keep TRR bounds in parallel arrays (the kGridSoa cells
/// of topo/nn_merge.cpp scan four contiguous double lanes with it, which is
/// what lets the compiler vectorize the candidate loop). The body is
/// TrrDist's interval arithmetic expanded verbatim — per-axis gap, per-axis
/// clamp to zero, then the max — so the result is bitwise identical to
/// TrrDist on the equivalent Trr values.
inline double TrrDistRaw(double au_lo, double au_hi, double av_lo,
                         double av_hi, double bu_lo, double bu_hi,
                         double bv_lo, double bv_hi) {
  const double gu = std::max(bu_lo - au_hi, au_lo - bu_hi);
  const double gv = std::max(bv_lo - av_hi, av_lo - bv_hi);
  const double du = gu > 0.0 ? gu : 0.0;
  const double dv = gv > 0.0 ? gv : 0.0;
  return std::max(du, dv);
}

/// Check Lemma 10.1's hypothesis: do all pairs intersect (with tolerance)?
bool PairwiseIntersecting(std::span<const Trr> regions, double tol = 0.0);

std::ostream& operator<<(std::ostream& os, const Trr& trr);

}  // namespace lubt

#endif  // LUBT_GEOM_TRR_H_
