#include "geom/trr.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace lubt {

Trr::Trr(Interval u, Interval v) : u_(u), v_(v) {
  if (u_.IsEmpty() || v_.IsEmpty()) {
    u_ = Interval::Empty();
    v_ = Interval::Empty();
  }
}

Trr Trr::FromPoint(const Point& p) {
  const DiagPoint d = ToDiag(p);
  return Trr(Interval::Singleton(d.u), Interval::Singleton(d.v));
}

Trr Trr::Square(const Point& center, double radius) {
  LUBT_ASSERT(radius >= 0.0);
  const DiagPoint d = ToDiag(center);
  return Trr({d.u - radius, d.u + radius}, {d.v - radius, d.v + radius});
}

bool Trr::IsPoint() const {
  return !IsEmpty() && u_.Length() == 0.0 && v_.Length() == 0.0;
}

bool Trr::IsSegment() const {
  return !IsEmpty() && (u_.Length() == 0.0 || v_.Length() == 0.0);
}

Point Trr::Center() const {
  LUBT_ASSERT(!IsEmpty());
  return FromDiag({u_.Center(), v_.Center()});
}

double Trr::Width() const {
  LUBT_ASSERT(!IsEmpty());
  constexpr double kInvSqrt2 = 0.70710678118654752440;
  return std::min(u_.Length(), v_.Length()) * kInvSqrt2;
}

bool Trr::Contains(const Point& p, double tol) const {
  if (IsEmpty()) return false;
  const DiagPoint d = ToDiag(p);
  return u_.Contains(d.u, tol) && v_.Contains(d.v, tol);
}

bool Trr::Contains(const Trr& other, double tol) const {
  if (other.IsEmpty()) return true;
  if (IsEmpty()) return false;
  return u_.Contains(other.u_, tol) && v_.Contains(other.v_, tol);
}

Trr Trr::Inflate(double r) const {
  LUBT_ASSERT(r >= 0.0);
  if (IsEmpty()) return Empty();
  return Trr(u_.Inflate(r), v_.Inflate(r));
}

Point Trr::ClosestTo(const Point& p) const {
  LUBT_ASSERT(!IsEmpty());
  const DiagPoint d = ToDiag(p);
  return FromDiag({u_.Clamp(d.u), v_.Clamp(d.v)});
}

double Trr::DistTo(const Point& p) const {
  LUBT_ASSERT(!IsEmpty());
  const DiagPoint d = ToDiag(p);
  // L1 distance in (x,y) is L-infinity in (u,v): the larger per-axis gap.
  return std::max(u_.DistTo(d.u), v_.DistTo(d.v));
}

Trr Intersect(const Trr& a, const Trr& b) {
  return Trr(Intersect(a.U(), b.U()), Intersect(a.V(), b.V()));
}

Trr IntersectAll(std::span<const Trr> regions) {
  if (regions.empty()) return Trr::Empty();
  Trr acc = regions[0];
  for (std::size_t i = 1; i < regions.size(); ++i) {
    acc = Intersect(acc, regions[i]);
    if (acc.IsEmpty()) return Trr::Empty();
  }
  return acc;
}

double TrrDist(const Trr& a, const Trr& b) {
  LUBT_ASSERT(!a.IsEmpty() && !b.IsEmpty());
  return std::max(IntervalGap(a.U(), b.U()), IntervalGap(a.V(), b.V()));
}

bool PairwiseIntersecting(std::span<const Trr> regions, double tol) {
  for (std::size_t i = 0; i < regions.size(); ++i) {
    for (std::size_t j = i + 1; j < regions.size(); ++j) {
      if (TrrDist(regions[i], regions[j]) > tol) return false;
    }
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Trr& trr) {
  if (trr.IsEmpty()) return os << "Trr{empty}";
  return os << "Trr{u=" << trr.U() << ", v=" << trr.V() << '}';
}

}  // namespace lubt
