// Axis-aligned bounding boxes in layout (x, y) coordinates.
//
// Used by the benchmark generators (die extents), the SVG exporter
// (viewport fitting) and the topology generators (geometric bipartition).

#ifndef LUBT_GEOM_BBOX_H_
#define LUBT_GEOM_BBOX_H_

#include <span>

#include "geom/point.h"

namespace lubt {

/// Axis-aligned rectangle; empty until the first Expand().
class BBox {
 public:
  BBox() = default;

  /// Box spanning the two corner points.
  BBox(const Point& lo, const Point& hi);

  /// Tight box around a point set (empty box for an empty span).
  static BBox Around(std::span<const Point> points);

  bool IsEmpty() const { return empty_; }

  /// Grow to include p.
  void Expand(const Point& p);

  /// Grow to include another box.
  void Expand(const BBox& other);

  /// Grow outward by margin >= 0 on all sides (no-op on empty).
  BBox Inflated(double margin) const;

  const Point& Lo() const;
  const Point& Hi() const;
  Point Center() const;
  double Width() const;
  double Height() const;
  /// Half the Manhattan diameter of the box.
  double HalfPerimeter() const;

  bool Contains(const Point& p, double tol = 0.0) const;

 private:
  bool empty_ = true;
  Point lo_{0.0, 0.0};
  Point hi_{0.0, 0.0};
};

}  // namespace lubt

#endif  // LUBT_GEOM_BBOX_H_
