// Rectilinear wire segments and L-shaped routes.
//
// The LP determines abstract edge *lengths*; the embedder then has to lay
// each edge down as rectilinear wire. A tight edge becomes an L-route (two
// axis-parallel segments); an elongated edge additionally carries snaking
// length. These helpers produce the polyline realization used by the SVG
// exporter and by the wirelength cross-check in the verifier.

#ifndef LUBT_GEOM_SEGMENT_H_
#define LUBT_GEOM_SEGMENT_H_

#include <vector>

#include "geom/point.h"

namespace lubt {

/// A straight axis-parallel wire piece.
struct WireSegment {
  Point a;
  Point b;

  /// Manhattan length (segments are axis-parallel so this is exact wire).
  double Length() const { return ManhattanDist(a, b); }

  /// True if the segment is horizontal or vertical (or degenerate).
  bool IsRectilinear() const { return a.x == b.x || a.y == b.y; }
};

/// L-shaped route from `from` to `to`, horizontal leg first.
/// Returns 0, 1 or 2 segments (0 when the points coincide).
std::vector<WireSegment> LRoute(const Point& from, const Point& to);

/// A route from `from` to `to` with total wirelength exactly
/// ManhattanDist(from, to) + extra, realized as an L-route plus a
/// serpentine detour (trombone) of length `extra` inserted near `from`.
/// `extra` must be >= 0. The serpentine fold pitch controls how tight the
/// snake folds are; it only affects aesthetics of exported layouts.
std::vector<WireSegment> SnakedRoute(const Point& from, const Point& to,
                                     double extra, double fold_pitch = 0.0);

/// Total Manhattan length of a polyline of segments.
double TotalLength(const std::vector<WireSegment>& segments);

}  // namespace lubt

#endif  // LUBT_GEOM_SEGMENT_H_
