// Points in the Manhattan (L1) plane and their diagonal-coordinate twins.
//
// The whole embedding machinery of the paper (tilted rectangular regions,
// their intersections, inflations and distances — Section 5 and the Appendix)
// becomes plain interval arithmetic after the 45-degree change of variables
//
//     u = x + y,   v = y - x
//
// because the L1 distance in (x, y) equals the Chebyshev (L-infinity)
// distance in (u, v), and every TRR is an axis-aligned rectangle in (u, v).
// Both representations are kept as distinct value types so conversions are
// explicit and cannot be mixed up.

#ifndef LUBT_GEOM_POINT_H_
#define LUBT_GEOM_POINT_H_

#include <cmath>
#include <ostream>

namespace lubt {

struct DiagPoint;

/// A point in ordinary (x, y) coordinates.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// The same plane in diagonal coordinates (u = x+y, v = y-x).
struct DiagPoint {
  double u = 0.0;
  double v = 0.0;

  friend bool operator==(const DiagPoint& a, const DiagPoint& b) {
    return a.u == b.u && a.v == b.v;
  }
};

/// (x, y) -> (u, v).
inline DiagPoint ToDiag(const Point& p) { return {p.x + p.y, p.y - p.x}; }

/// (u, v) -> (x, y).
inline Point FromDiag(const DiagPoint& d) {
  return {(d.u - d.v) * 0.5, (d.u + d.v) * 0.5};
}

/// Manhattan distance |dx| + |dy|.
inline double ManhattanDist(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Chebyshev distance max(|du|, |dv|); equals ManhattanDist of the preimages.
inline double ChebyshevDist(const DiagPoint& a, const DiagPoint& b) {
  return std::max(std::abs(a.u - b.u), std::abs(a.v - b.v));
}

/// Euclidean distance; used only to demonstrate Section 4.7 (EBF is *not*
/// valid in the Euclidean metric).
inline double EuclideanDist(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

inline std::ostream& operator<<(std::ostream& os, const DiagPoint& p) {
  return os << "[u=" << p.u << ", v=" << p.v << ']';
}

}  // namespace lubt

#endif  // LUBT_GEOM_POINT_H_
