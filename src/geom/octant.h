// Octant aggregates for exact farthest-pair bounds under the L1 metric.
//
// Manhattan distance decomposes over the four sign combinations
//
//     dist(p, q) = max over s in {+1,-1}^2 of  s.(p - q)
//                = max over s of  (s.p) + (-s.q),
//
// so the maximum of dist(p, q) + f(p) + g(q) over p in P, q in Q — the shape
// of every Steiner-row violation query, with f/g the negated root distances —
// equals max over s of [max_P (s.p + f)] + [max_Q (-s.q + g)]. Maintaining
// the four per-octant maxima per set makes that cross bound O(1) and the
// maxima merge bottom-up over a topology in O(1) per node, which is what
// turns the all-pairs separation scan into an output-sensitive oracle
// (ebf/formulation.cpp). The bound is *exact* (not an estimate) whenever
// both sets are singletons.

#ifndef LUBT_GEOM_OCTANT_H_
#define LUBT_GEOM_OCTANT_H_

#include <algorithm>
#include <limits>

#include "geom/point.h"

namespace lubt {

/// Per-octant maxima of s.p + offset over a point set, one slot per sign
/// combination s in {(+,+), (+,-), (-,+), (-,-)}.
struct OctantMax {
  static constexpr int kOctants = 4;

  double m[kOctants] = {
      -std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity()};

  /// s.p for octant k; the order above makes Opposite(k) == 3 - k.
  static double Key(int k, const Point& p) {
    switch (k) {
      case 0: return p.x + p.y;
      case 1: return p.x - p.y;
      case 2: return p.y - p.x;
      default: return -p.x - p.y;
    }
  }

  /// Index of the negated sign combination.
  static constexpr int Opposite(int k) { return kOctants - 1 - k; }

  /// Fold one point with an additive offset into the maxima.
  void Include(const Point& p, double offset) {
    for (int k = 0; k < kOctants; ++k) {
      m[k] = std::max(m[k], Key(k, p) + offset);
    }
  }

  /// Pointwise max with another aggregate (set union).
  void Merge(const OctantMax& o) {
    for (int k = 0; k < kOctants; ++k) m[k] = std::max(m[k], o.m[k]);
  }

  bool Empty() const {
    return m[0] == -std::numeric_limits<double>::infinity();
  }

  /// max over p in A, q in B of dist(p, q) + offset_A(p) + offset_B(q).
  /// -inf when either side is empty.
  static double CrossBound(const OctantMax& a, const OctantMax& b) {
    double best = -std::numeric_limits<double>::infinity();
    for (int k = 0; k < kOctants; ++k) {
      best = std::max(best, a.m[k] + b.m[Opposite(k)]);
    }
    return best;
  }

  /// CrossBound restricted to pairs with at least one point in a marked
  /// ("dirty") subset: each side carries two aggregates, one over all its
  /// points and one over the dirty points only, and
  ///   max(CrossBound(dirty_A, all_B), CrossBound(all_A, dirty_B))
  /// bounds every pair with >= 1 dirty endpoint. This is the screen the ECO
  /// engine uses to re-separate only the region an edit touched
  /// (eco/eco_session.cpp) without losing the exactness of CrossBound.
  static double CrossBoundDirty(const OctantMax& a_all,
                                const OctantMax& a_dirty,
                                const OctantMax& b_all,
                                const OctantMax& b_dirty) {
    return std::max(CrossBound(a_dirty, b_all), CrossBound(a_all, b_dirty));
  }
};

}  // namespace lubt

#endif  // LUBT_GEOM_OCTANT_H_
