// Octant aggregates for exact farthest-pair bounds under the L1 metric.
//
// Manhattan distance decomposes over the four sign combinations
//
//     dist(p, q) = max over s in {+1,-1}^2 of  s.(p - q)
//                = max over s of  (s.p) + (-s.q),
//
// so the maximum of dist(p, q) + f(p) + g(q) over p in P, q in Q — the shape
// of every Steiner-row violation query, with f/g the negated root distances —
// equals max over s of [max_P (s.p + f)] + [max_Q (-s.q + g)]. Maintaining
// the four per-octant maxima per set makes that cross bound O(1) and the
// maxima merge bottom-up over a topology in O(1) per node, which is what
// turns the all-pairs separation scan into an output-sensitive oracle
// (ebf/formulation.cpp). The bound is *exact* (not an estimate) whenever
// both sets are singletons.

#ifndef LUBT_GEOM_OCTANT_H_
#define LUBT_GEOM_OCTANT_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "geom/point.h"

namespace lubt {

/// Per-octant maxima of s.p + offset over a point set, one slot per sign
/// combination s in {(+,+), (+,-), (-,+), (-,-)}.
struct OctantMax {
  static constexpr int kOctants = 4;

  double m[kOctants] = {
      -std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity()};

  /// s.p for octant k; the order above makes Opposite(k) == 3 - k.
  static double Key(int k, const Point& p) {
    switch (k) {
      case 0: return p.x + p.y;
      case 1: return p.x - p.y;
      case 2: return p.y - p.x;
      default: return -p.x - p.y;
    }
  }

  /// Index of the negated sign combination.
  static constexpr int Opposite(int k) { return kOctants - 1 - k; }

  /// Fold one point with an additive offset into the maxima.
  void Include(const Point& p, double offset) {
    for (int k = 0; k < kOctants; ++k) {
      m[k] = std::max(m[k], Key(k, p) + offset);
    }
  }

  /// Pointwise max with another aggregate (set union).
  void Merge(const OctantMax& o) {
    for (int k = 0; k < kOctants; ++k) m[k] = std::max(m[k], o.m[k]);
  }

  bool Empty() const {
    return m[0] == -std::numeric_limits<double>::infinity();
  }

  /// max over p in A, q in B of dist(p, q) + offset_A(p) + offset_B(q).
  /// -inf when either side is empty.
  static double CrossBound(const OctantMax& a, const OctantMax& b) {
    double best = -std::numeric_limits<double>::infinity();
    for (int k = 0; k < kOctants; ++k) {
      best = std::max(best, a.m[k] + b.m[Opposite(k)]);
    }
    return best;
  }

  /// CrossBound restricted to pairs with at least one point in a marked
  /// ("dirty") subset: each side carries two aggregates, one over all its
  /// points and one over the dirty points only, and
  ///   max(CrossBound(dirty_A, all_B), CrossBound(all_A, dirty_B))
  /// bounds every pair with >= 1 dirty endpoint. This is the screen the ECO
  /// engine uses to re-separate only the region an edit touched
  /// (eco/eco_session.cpp) without losing the exactness of CrossBound.
  static double CrossBoundDirty(const OctantMax& a_all,
                                const OctantMax& a_dirty,
                                const OctantMax& b_all,
                                const OctantMax& b_dirty) {
    return std::max(CrossBound(a_dirty, b_all), CrossBound(a_all, b_dirty));
  }
};

/// Key-major (structure-of-arrays) store of OctantMax aggregates: lane k
/// holds, contiguously, the octant-k maximum of every slot. In diagonal
/// coordinates the four lanes are the subtree maxima of +u, -v, +v, -u
/// (each plus the per-point offset), so bulk operations — the Assign reset,
/// the bottom-up Merge sweep, the bucket screen — become branch-free
/// min/max reductions over flat double arrays instead of strided walks over
/// an array of 4-wide structs.
///
/// Every operation performs the *identical* std::max chain over the
/// *identical* Key(k, p) + offset values as the OctantMax it mirrors, so
/// each bound is bitwise equal to the AoS aggregate's. The SoA separation
/// backend (SeparationMode::kOctantSoa) rides on that equality: same bounds
/// => same pruning decisions => byte-identical violated-row output.
class OctantSoa {
 public:
  /// Reset to n empty slots (four contiguous -inf fills).
  void Assign(std::size_t n) {
    for (auto& lane : lane_) {
      lane.assign(n, -std::numeric_limits<double>::infinity());
    }
  }

  std::size_t size() const { return lane_[0].size(); }

  /// OctantMax::Include on slot i.
  void Include(std::size_t i, const Point& p, double offset) {
    for (int k = 0; k < OctantMax::kOctants; ++k) {
      double& m = lane_[static_cast<std::size_t>(k)][i];
      m = std::max(m, OctantMax::Key(k, p) + offset);
    }
  }

  /// OctantMax::Merge of slot src into slot dst (lane-wise max).
  void Merge(std::size_t dst, std::size_t src) {
    for (auto& lane : lane_) lane[dst] = std::max(lane[dst], lane[src]);
  }

  /// Copy slot src of `o` into slot dst (seeds the dirty aggregate).
  void CopyFrom(std::size_t dst, const OctantSoa& o, std::size_t src) {
    for (int k = 0; k < OctantMax::kOctants; ++k) {
      lane_[static_cast<std::size_t>(k)][dst] =
          o.lane_[static_cast<std::size_t>(k)][src];
    }
  }

  bool Empty(std::size_t i) const {
    return lane_[0][i] == -std::numeric_limits<double>::infinity();
  }

  /// OctantMax::CrossBound with side A drawn from slot a of `a_store` and
  /// side B from slot b of `b_store` — the same k-ascending max chain over
  /// the same sums, hence the bitwise-identical bound.
  static double CrossBound(const OctantSoa& a_store, std::size_t a,
                           const OctantSoa& b_store, std::size_t b) {
    double best = -std::numeric_limits<double>::infinity();
    for (int k = 0; k < OctantMax::kOctants; ++k) {
      best = std::max(
          best, a_store.lane_[static_cast<std::size_t>(k)][a] +
                    b_store.lane_[static_cast<std::size_t>(
                        OctantMax::Opposite(k))][b]);
    }
    return best;
  }

  /// OctantMax::CrossBoundDirty over two parallel stores (`all` = every
  /// point, `dirty` = the flagged subset, same slot indexing).
  static double CrossBoundDirty(const OctantSoa& all, const OctantSoa& dirty,
                                std::size_t a, std::size_t b) {
    return std::max(CrossBound(dirty, a, all, b),
                    CrossBound(all, a, dirty, b));
  }

 private:
  std::vector<double> lane_[OctantMax::kOctants];
};

}  // namespace lubt

#endif  // LUBT_GEOM_OCTANT_H_
