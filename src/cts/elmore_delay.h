// Elmore delay model (Section 7, Equation 12).
//
// delay(s_j) = sum over path(s_0, s_j) of  r_w * e_k * (c_w * e_k / 2 + C_k)
//
// where C_k is the total capacitance of the subtree hanging below edge k
// (edge capacitance c_w * length plus sink load capacitances). The model is
// quadratic in the edge lengths; the EBF extension linearizes it (see
// ebf/elmore_slp.h).

#ifndef LUBT_CTS_ELMORE_DELAY_H_
#define LUBT_CTS_ELMORE_DELAY_H_

#include <span>
#include <vector>

#include "topo/topology.h"

namespace lubt {

/// Electrical parameters of the routing layer and sink loads.
struct ElmoreParams {
  double unit_resistance = 1.0;   ///< r_w per unit length
  double unit_capacitance = 1.0;  ///< c_w per unit length
  /// Load capacitance per sink (indexed by sink index); empty = all zero.
  std::vector<double> sink_load;

  double LoadOf(std::int32_t sink) const {
    if (sink_load.empty()) return 0.0;
    return sink_load[static_cast<std::size_t>(sink)];
  }
};

/// Downstream capacitance C_v of every node's subtree (self edge excluded),
/// indexed by node id.
std::vector<double> SubtreeCapacitances(const Topology& topo,
                                        std::span<const double> edge_len,
                                        const ElmoreParams& params);

/// Elmore delay of every sink (indexed by sink index).
std::vector<double> ElmoreSinkDelays(const Topology& topo,
                                     std::span<const double> edge_len,
                                     const ElmoreParams& params);

}  // namespace lubt

#endif  // LUBT_CTS_ELMORE_DELAY_H_
