#include "cts/bounded_skew_dme.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cts/linear_delay.h"
#include "cts/metrics.h"
#include "geom/trr.h"
#include "topo/bipartition.h"
#include "topo/mst.h"
#include "topo/validate.h"

namespace lubt {
namespace {

// Bottom-up state of one subtree: its DME merging region and the exact
// interval of its sink delays measured from the subtree top.
struct ClusterState {
  Trr region;
  double dmin = 0.0;
  double dmax = 0.0;
};

// Choose the merge edge lengths (e_a, e_b) for clusters with delay windows
// [la, ha], [lb, hb] at region distance d, minimizing e_a + e_b subject to
// merged spread <= bound.
//
// Derivation: with rel = e_a - e_b, shifting window a by rel relative to b,
// the merged spread stays within `bound` iff
//   rel >= hb - la - bound   (=: r1)   and   rel <= lb - ha + bound (=: r2).
// r1 <= r2 follows from both spreads being <= bound (invariant). Any
// rel in [-d, d] is realizable at total length d; outside it, the total must
// grow to |rel| (elongation of one side).
std::pair<double, double> ChooseMergeLengths(double la, double ha, double lb,
                                             double hb, double d,
                                             double bound) {
  const double r1 = hb - la - bound;
  const double r2 = lb - ha + bound;
  LUBT_ASSERT(r1 <= r2 + 1e-9);
  // Preferred split: the cost-natural rel = 0 (plain halving, as in greedy
  // Steiner merging). Skew then accumulates freely until the bound binds,
  // which is what makes the baseline's cost rise as the bound tightens —
  // the qualitative behaviour of [9]. (Center alignment, by contrast, would
  // produce near-zero skew at every bound and a flat cost curve.)
  const double rel_pref = 0.0;

  double rel;
  double total;
  if (r1 <= d && r2 >= -d) {
    // A plain split of the distance can satisfy the bound: no elongation.
    const double lo = std::max(r1, -d);
    const double hi = std::min(r2, d);
    rel = std::clamp(rel_pref, lo, hi);
    total = d;
  } else if (r1 > d) {
    // Side a must be elongated: take the smallest admissible rel.
    rel = r1;
    total = r1;
  } else {
    // Side b must be elongated.
    rel = r2;
    total = -r2;
  }
  const double ea = 0.5 * (total + rel);
  const double eb = 0.5 * (total - rel);
  LUBT_ASSERT(ea >= -1e-9 && eb >= -1e-9);
  return {std::max(ea, 0.0), std::max(eb, 0.0)};
}

// Merge two cluster states under the bound; returns the new state and the
// chosen edge lengths.
ClusterState MergeStates(const ClusterState& a, const ClusterState& b,
                         double bound, double* ea_out, double* eb_out) {
  const double d = TrrDist(a.region, b.region);
  const auto [ea, eb] =
      ChooseMergeLengths(a.dmin, a.dmax, b.dmin, b.dmax, d, bound);
  ClusterState out;
  // Tiny inflation absorbs rounding when ea + eb == d exactly (the inflated
  // regions only touch); the slack only loosens the merge-guidance regions,
  // not the assigned edge lengths.
  const double eps = 1e-9 * (1.0 + d);
  out.region = Intersect(a.region.Inflate(ea + eps), b.region.Inflate(eb + eps));
  out.dmin = std::min(a.dmin + ea, b.dmin + eb);
  out.dmax = std::max(a.dmax + ea, b.dmax + eb);
  *ea_out = ea;
  *eb_out = eb;
  return out;
}

// Wire cost of merging a and b (distance plus forced elongation). Scoring
// merges by this — instead of raw region distance — adapts the merge order
// to the bound, mirroring [9]'s skew-guided topology generation.
double MergeScore(const ClusterState& a, const ClusterState& b, double bound) {
  const double d = TrrDist(a.region, b.region);
  const auto [ea, eb] =
      ChooseMergeLengths(a.dmin, a.dmax, b.dmin, b.dmax, d, bound);
  return ea + eb;
}

struct Cluster {
  NodeId node = kInvalidNode;
  ClusterState state;
  bool active = false;
  int nn = -1;
  double nn_dist = std::numeric_limits<double>::infinity();
};

void RefreshNn(std::vector<Cluster>& clusters, int c, double bound) {
  Cluster& self = clusters[static_cast<std::size_t>(c)];
  self.nn = -1;
  self.nn_dist = std::numeric_limits<double>::infinity();
  for (int j = 0; j < static_cast<int>(clusters.size()); ++j) {
    if (j == c || !clusters[static_cast<std::size_t>(j)].active) continue;
    const double d =
        MergeScore(self.state, clusters[static_cast<std::size_t>(j)].state,
                   bound);
    if (d < self.nn_dist) {
      self.nn_dist = d;
      self.nn = j;
    }
  }
}

// Finalize a BoundedSkewTree from topology + edge lengths (root edge for a
// fixed source is assigned from the top cluster's region).
void Finalize(BoundedSkewTree& out, const std::optional<Point>& source,
              const ClusterState& top_state, NodeId top_node) {
  Topology& topo = out.topo;
  if (source.has_value()) {
    const NodeId root = topo.AddUnaryNode(top_node);
    topo.SetRoot(root, RootMode::kFixedSource);
    out.edge_len.resize(static_cast<std::size_t>(topo.NumNodes()), 0.0);
    out.edge_len[static_cast<std::size_t>(top_node)] =
        top_state.region.DistTo(*source);
  } else {
    topo.SetRoot(top_node, RootMode::kFreeSource);
  }
  const TreeStats stats = ComputeTreeStats(topo, out.edge_len);
  out.cost = stats.cost;
  out.min_delay = stats.min_delay;
  out.max_delay = stats.max_delay;
  out.sink_delay = LinearSinkDelays(topo, out.edge_len);
}

// The merge-order search (builds its own topology).
Result<BoundedSkewTree> MergeSearch(std::span<const Point> sinks,
                                    const std::optional<Point>& source,
                                    double skew_bound) {
  BoundedSkewTree out;
  Topology& topo = out.topo;

  std::vector<Cluster> clusters;
  clusters.reserve(2 * sinks.size());
  for (std::size_t s = 0; s < sinks.size(); ++s) {
    Cluster c;
    c.node = topo.AddSinkNode(static_cast<std::int32_t>(s));
    c.state.region = Trr::FromPoint(sinks[s]);
    c.active = true;
    clusters.push_back(c);
  }

  out.edge_len.assign(sinks.size(), 0.0);
  int active_count = static_cast<int>(clusters.size());
  for (int c = 0; c < active_count; ++c) RefreshNn(clusters, c, skew_bound);

  while (active_count > 1) {
    int best = -1;
    for (int c = 0; c < static_cast<int>(clusters.size()); ++c) {
      Cluster& cl = clusters[static_cast<std::size_t>(c)];
      if (!cl.active) continue;
      if (cl.nn < 0 || !clusters[static_cast<std::size_t>(cl.nn)].active) {
        RefreshNn(clusters, c, skew_bound);
      }
      if (best < 0 ||
          cl.nn_dist < clusters[static_cast<std::size_t>(best)].nn_dist) {
        best = c;
      }
    }
    const int a = best;
    const int b = clusters[static_cast<std::size_t>(a)].nn;
    const Cluster ca = clusters[static_cast<std::size_t>(a)];
    const Cluster cb = clusters[static_cast<std::size_t>(b)];

    Cluster merged;
    double ea = 0.0;
    double eb = 0.0;
    merged.state = MergeStates(ca.state, cb.state, skew_bound, &ea, &eb);
    if (merged.state.region.IsEmpty()) {
      return Status::Internal("merging region unexpectedly empty");
    }
    if (merged.state.dmax - merged.state.dmin >
        skew_bound + 1e-6 * (1.0 + skew_bound)) {
      return Status::Internal("merge violated the skew bound");
    }
    merged.node = topo.AddInternalNode(ca.node, cb.node);
    merged.active = true;

    out.edge_len.resize(static_cast<std::size_t>(topo.NumNodes()), 0.0);
    out.edge_len[static_cast<std::size_t>(ca.node)] = ea;
    out.edge_len[static_cast<std::size_t>(cb.node)] = eb;

    clusters[static_cast<std::size_t>(a)].active = false;
    clusters[static_cast<std::size_t>(b)].active = false;
    clusters.push_back(merged);
    const int nid = static_cast<int>(clusters.size()) - 1;
    RefreshNn(clusters, nid, skew_bound);
    for (int c = 0; c < nid; ++c) {
      Cluster& cl = clusters[static_cast<std::size_t>(c)];
      if (!cl.active) continue;
      const double dc = MergeScore(
          cl.state, clusters[static_cast<std::size_t>(nid)].state, skew_bound);
      if (dc < cl.nn_dist) {
        cl.nn_dist = dc;
        cl.nn = nid;
      }
    }
    --active_count;
  }

  const Cluster* top = nullptr;
  for (const Cluster& c : clusters) {
    if (c.active) {
      top = &c;
      break;
    }
  }
  LUBT_ASSERT(top != nullptr);
  Finalize(out, source, top->state, top->node);
  out.generator = "merge-search";
  return out;
}

}  // namespace

Result<BoundedSkewTree> BoundedSkewOnTopology(
    const Topology& topo, std::span<const Point> sinks,
    const std::optional<Point>& source, double skew_bound) {
  LUBT_RETURN_IF_ERROR(ValidateTopology(topo, static_cast<int>(sinks.size())));
  if (!(skew_bound >= 0.0)) {
    return Status::InvalidArgument("skew bound must be non-negative");
  }
  if (source.has_value() != (topo.Mode() == RootMode::kFixedSource)) {
    return Status::InvalidArgument("source presence must match root mode");
  }

  BoundedSkewTree out;
  out.topo = topo;
  out.edge_len.assign(static_cast<std::size_t>(topo.NumNodes()), 0.0);
  std::vector<ClusterState> state(static_cast<std::size_t>(topo.NumNodes()));

  ClusterState top_state;
  NodeId top_node = kInvalidNode;
  for (const NodeId v : topo.PostOrder()) {
    if (topo.IsSinkNode(v)) {
      state[static_cast<std::size_t>(v)].region = Trr::FromPoint(
          sinks[static_cast<std::size_t>(topo.SinkIndex(v))]);
      continue;
    }
    const TopoNode& node = topo.Node(v);
    if (node.right == kInvalidNode) continue;  // fixed-source root: later
    double ea = 0.0;
    double eb = 0.0;
    state[static_cast<std::size_t>(v)] =
        MergeStates(state[static_cast<std::size_t>(node.left)],
                    state[static_cast<std::size_t>(node.right)], skew_bound,
                    &ea, &eb);
    if (state[static_cast<std::size_t>(v)].region.IsEmpty()) {
      return Status::Internal("merging region unexpectedly empty");
    }
    out.edge_len[static_cast<std::size_t>(node.left)] = ea;
    out.edge_len[static_cast<std::size_t>(node.right)] = eb;
  }
  top_node = topo.Mode() == RootMode::kFixedSource
                 ? topo.Node(topo.Root()).left
                 : topo.Root();
  top_state = state[static_cast<std::size_t>(top_node)];

  // Finalize without re-adding a root (the topology is fixed).
  if (source.has_value()) {
    out.edge_len[static_cast<std::size_t>(top_node)] =
        top_state.region.DistTo(*source);
  }
  const TreeStats stats = ComputeTreeStats(out.topo, out.edge_len);
  out.cost = stats.cost;
  out.min_delay = stats.min_delay;
  out.max_delay = stats.max_delay;
  out.sink_delay = LinearSinkDelays(out.topo, out.edge_len);
  out.generator = "fixed-topology";
  return out;
}

Result<BoundedSkewTree> PadEmbeddingToSkewBound(
    const Topology& topo, std::span<const Point> sinks,
    const std::optional<Point>& source, std::span<const Point> node_loc,
    double skew_bound) {
  LUBT_RETURN_IF_ERROR(ValidateTopology(topo, static_cast<int>(sinks.size())));
  if (!(skew_bound >= 0.0)) {
    return Status::InvalidArgument("skew bound must be non-negative");
  }
  if (node_loc.size() != static_cast<std::size_t>(topo.NumNodes())) {
    return Status::InvalidArgument("node_loc must have one entry per node");
  }
  if (source.has_value() != (topo.Mode() == RootMode::kFixedSource)) {
    return Status::InvalidArgument("source presence must match root mode");
  }

  BoundedSkewTree out;
  out.topo = topo;
  out.edge_len.assign(static_cast<std::size_t>(topo.NumNodes()), 0.0);
  for (NodeId v = 0; v < topo.NumNodes(); ++v) {
    const NodeId p = topo.Parent(v);
    if (p == kInvalidNode) continue;
    out.edge_len[static_cast<std::size_t>(v)] =
        ManhattanDist(node_loc[static_cast<std::size_t>(v)],
                      node_loc[static_cast<std::size_t>(p)]);
  }

  // Pad short sinks up to max_delay - bound via their leaf edge (padding is
  // realized as snaking, so the embedding stays valid).
  std::vector<double> delays = LinearSinkDelays(topo, out.edge_len);
  double dmax = 0.0;
  for (const double d : delays) dmax = std::max(dmax, d);
  const double need = dmax - skew_bound;
  if (need > 0.0) {
    for (NodeId v = 0; v < topo.NumNodes(); ++v) {
      if (!topo.IsSinkNode(v) || topo.Parent(v) == kInvalidNode) continue;
      const double d = delays[static_cast<std::size_t>(topo.SinkIndex(v))];
      if (d < need) {
        out.edge_len[static_cast<std::size_t>(v)] += need - d;
      }
    }
  }

  const TreeStats stats = ComputeTreeStats(out.topo, out.edge_len);
  out.cost = stats.cost;
  out.min_delay = stats.min_delay;
  out.max_delay = stats.max_delay;
  out.sink_delay = LinearSinkDelays(out.topo, out.edge_len);
  if (out.max_delay - out.min_delay > skew_bound * (1.0 + 1e-9) + 1e-9) {
    return Status::Internal("padding failed to meet the skew bound");
  }
  out.generator = "padded-embedding";
  return out;
}

Result<BoundedSkewTree> BuildBoundedSkewTree(
    std::span<const Point> sinks, const std::optional<Point>& source,
    double skew_bound) {
  if (sinks.empty()) {
    return Status::InvalidArgument("no sinks");
  }
  if (!(skew_bound >= 0.0)) {  // also rejects NaN
    return Status::InvalidArgument("skew bound must be non-negative");
  }

  Result<BoundedSkewTree> best = MergeSearch(sinks, source, skew_bound);
  auto consider = [&best](Result<BoundedSkewTree> cand, const char* name) {
    if (!cand.ok()) return;
    cand->generator = name;
    if (!best.ok() || cand->cost < best->cost) best = std::move(cand);
  };

  // Portfolio, mirroring [9]'s bound-adaptive topology generation. Tight
  // bounds favour the merge search; loose bounds favour MST-derived trees;
  // the middle is covered by the bounded-skew recurrence on fixed balanced /
  // MST topologies.
  std::vector<Point> node_loc;
  const Topology mst = MstBinaryTopology(sinks, source, &node_loc);
  consider(PadEmbeddingToSkewBound(mst, sinks, source, node_loc, skew_bound),
           "padded-mst");
  consider(BoundedSkewOnTopology(mst, sinks, source, skew_bound),
           "dme-on-mst");
  const Topology bipart = BipartitionTopology(sinks, source);
  consider(BoundedSkewOnTopology(bipart, sinks, source, skew_bound),
           "dme-on-bipartition");
  return best;
}

}  // namespace lubt
