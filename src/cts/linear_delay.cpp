#include "cts/linear_delay.h"

namespace lubt {

std::vector<double> LinearSinkDelays(const Topology& topo,
                                     std::span<const double> edge_len) {
  LUBT_ASSERT(edge_len.size() == static_cast<std::size_t>(topo.NumNodes()));
  std::vector<double> root_dist(static_cast<std::size_t>(topo.NumNodes()), 0.0);
  std::vector<double> delays(static_cast<std::size_t>(topo.NumSinkNodes()),
                             0.0);
  for (const NodeId v : topo.PreOrder()) {
    const NodeId p = topo.Parent(v);
    if (p != kInvalidNode) {
      root_dist[static_cast<std::size_t>(v)] =
          root_dist[static_cast<std::size_t>(p)] +
          edge_len[static_cast<std::size_t>(v)];
    }
    if (topo.IsSinkNode(v)) {
      delays[static_cast<std::size_t>(topo.SinkIndex(v))] =
          root_dist[static_cast<std::size_t>(v)];
    }
  }
  return delays;
}

}  // namespace lubt
