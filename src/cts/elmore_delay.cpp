#include "cts/elmore_delay.h"

namespace lubt {

std::vector<double> SubtreeCapacitances(const Topology& topo,
                                        std::span<const double> edge_len,
                                        const ElmoreParams& params) {
  LUBT_ASSERT(edge_len.size() == static_cast<std::size_t>(topo.NumNodes()));
  std::vector<double> cap(static_cast<std::size_t>(topo.NumNodes()), 0.0);
  for (const NodeId v : topo.PostOrder()) {
    double c = 0.0;
    if (topo.IsSinkNode(v)) {
      c += params.LoadOf(topo.SinkIndex(v));
    }
    const TopoNode& node = topo.Node(v);
    // Children contribute their subtree cap plus their own edge wire cap.
    for (const NodeId child : {node.left, node.right}) {
      if (child == kInvalidNode) continue;
      c += cap[static_cast<std::size_t>(child)] +
           params.unit_capacitance * edge_len[static_cast<std::size_t>(child)];
    }
    cap[static_cast<std::size_t>(v)] = c;
  }
  return cap;
}

std::vector<double> ElmoreSinkDelays(const Topology& topo,
                                     std::span<const double> edge_len,
                                     const ElmoreParams& params) {
  const std::vector<double> cap = SubtreeCapacitances(topo, edge_len, params);
  std::vector<double> node_delay(static_cast<std::size_t>(topo.NumNodes()),
                                 0.0);
  std::vector<double> delays(static_cast<std::size_t>(topo.NumSinkNodes()),
                             0.0);
  for (const NodeId v : topo.PreOrder()) {
    const NodeId p = topo.Parent(v);
    if (p != kInvalidNode) {
      const double e = edge_len[static_cast<std::size_t>(v)];
      const double stage =
          params.unit_resistance * e *
          (0.5 * params.unit_capacitance * e + cap[static_cast<std::size_t>(v)]);
      node_delay[static_cast<std::size_t>(v)] =
          node_delay[static_cast<std::size_t>(p)] + stage;
    }
    if (topo.IsSinkNode(v)) {
      delays[static_cast<std::size_t>(topo.SinkIndex(v))] =
          node_delay[static_cast<std::size_t>(v)];
    }
  }
  return delays;
}

}  // namespace lubt
