// Bounded-skew clock tree construction (the paper's comparator [9]).
//
// Huang-Kahng-Tsao's BST/DME code is not available, so this module provides
// the substitute documented in DESIGN.md: a bottom-up merging-region DME in
// which every cluster carries
//
//   * a TRR merging region (exactly the DME construction),
//   * the exact interval [dmin, dmax] of its subtree's sink delays measured
//     from the cluster's top (delays are sums of *assigned* edge lengths, so
//     the interval is exact under the linear model with snaking),
//
// and every merge picks edge lengths (e_a, e_b) that minimize added wire
// subject to keeping the merged delay spread within the skew bound; wire is
// elongated only when a plain distance-split cannot meet the bound. The
// invariant "cluster spread <= bound" makes every merge feasible.
//
// Special cases: bound 0 reduces to the Boese-Kahng zero-skew DME [7];
// bound infinity reduces to a greedy nearest-neighbour Steiner heuristic.
// For tight positive bounds the construction is suboptimal in cost exactly
// like [9] (it cannot revisit earlier merges), which is what the paper's
// Table 1 exploits: re-solving the same topology with EBF at the achieved
// [shortest, longest] delays can only reduce cost.

#ifndef LUBT_CTS_BOUNDED_SKEW_DME_H_
#define LUBT_CTS_BOUNDED_SKEW_DME_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "geom/point.h"
#include "topo/topology.h"
#include "util/status.h"

namespace lubt {

/// Output of the baseline builder.
struct BoundedSkewTree {
  Topology topo;                 ///< full binary, every sink a leaf
  std::vector<double> edge_len;  ///< assigned lengths, indexed by node id
  double cost = 0.0;             ///< sum of assigned lengths
  double min_delay = 0.0;        ///< shortest source-sink delay
  double max_delay = 0.0;        ///< longest source-sink delay
  std::vector<double> sink_delay;  ///< per sink index
  std::string generator;         ///< which portfolio candidate won
};

/// Apply the bounded-skew merge recurrence bottom-up on a *fixed* topology
/// (binary, every sink a leaf): assigns edge lengths keeping every subtree's
/// delay spread within the bound, elongating only where forced. Always
/// feasible (the spread invariant is maintained at every node).
Result<BoundedSkewTree> BoundedSkewOnTopology(
    const Topology& topo, std::span<const Point> sinks,
    const std::optional<Point>& source, double skew_bound);

/// Build a bounded-skew tree from a *known embedding*: every edge gets its
/// physical child-parent distance, then each sink whose delay falls more
/// than `skew_bound` below the maximum has its leaf edge padded (snaked)
/// up to max_delay - skew_bound. Always feasible; cheap when the bound is
/// loose, expensive when tight.
Result<BoundedSkewTree> PadEmbeddingToSkewBound(
    const Topology& topo, std::span<const Point> sinks,
    const std::optional<Point>& source, std::span<const Point> node_loc,
    double skew_bound);

/// Build a bounded-skew tree over `sinks` with the given absolute skew
/// bound (use kLpInf-like large values for "unbounded"; 0 for zero skew).
/// With `source`, the root is the fixed source; otherwise the tree is
/// source-free and delays are measured from the top merge node.
///
/// Portfolio construction, mirroring [9]'s skew-adaptive topology
/// generation: a merge-order search (strong when the bound is tight) and a
/// padded MST-derived embedding (strong when the bound is loose) are both
/// built and the cheaper tree returned.
Result<BoundedSkewTree> BuildBoundedSkewTree(
    std::span<const Point> sinks, const std::optional<Point>& source,
    double skew_bound);

}  // namespace lubt

#endif  // LUBT_CTS_BOUNDED_SKEW_DME_H_
