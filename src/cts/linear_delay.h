// Linear delay model (Section 2, Equation 1).
//
// Under the linear model the source-sink delay is simply the total wire
// length of the source-sink path; with wire snaking allowed, the delay of a
// sink is the sum of the *assigned* edge lengths on its path, independent of
// where the embedder places the Steiner points.

#ifndef LUBT_CTS_LINEAR_DELAY_H_
#define LUBT_CTS_LINEAR_DELAY_H_

#include <span>
#include <vector>

#include "topo/topology.h"

namespace lubt {

/// Delay of every sink (indexed by sink index, size = NumSinkNodes())
/// for the given per-node edge lengths.
std::vector<double> LinearSinkDelays(const Topology& topo,
                                     std::span<const double> edge_len);

}  // namespace lubt

#endif  // LUBT_CTS_LINEAR_DELAY_H_
