#include "cts/metrics.h"

#include <algorithm>

#include "cts/linear_delay.h"

namespace lubt {

TreeStats ComputeTreeStats(const Topology& topo,
                           std::span<const double> edge_len) {
  TreeStats stats;
  for (const NodeId v : topo.PreOrder()) {
    if (topo.Parent(v) != kInvalidNode) {
      stats.cost += edge_len[static_cast<std::size_t>(v)];
    }
  }
  const std::vector<double> delays = LinearSinkDelays(topo, edge_len);
  LUBT_ASSERT(!delays.empty());
  const auto [mn, mx] = std::minmax_element(delays.begin(), delays.end());
  stats.min_delay = *mn;
  stats.max_delay = *mx;
  return stats;
}

double Radius(std::span<const Point> sinks,
              const std::optional<Point>& source) {
  LUBT_ASSERT(!sinks.empty());
  if (source.has_value()) {
    double r = 0.0;
    for (const Point& s : sinks) {
      r = std::max(r, ManhattanDist(*source, s));
    }
    return r;
  }
  double diameter = 0.0;
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    for (std::size_t j = i + 1; j < sinks.size(); ++j) {
      diameter = std::max(diameter, ManhattanDist(sinks[i], sinks[j]));
    }
  }
  return diameter * 0.5;
}

}  // namespace lubt
