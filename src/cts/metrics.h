// Tree quality metrics shared by benches, tests and examples.

#ifndef LUBT_CTS_METRICS_H_
#define LUBT_CTS_METRICS_H_

#include <optional>
#include <span>

#include "geom/point.h"
#include "topo/topology.h"

namespace lubt {

/// Summary of one routed tree under the linear delay model.
struct TreeStats {
  double cost = 0.0;       ///< sum of assigned edge lengths
  double min_delay = 0.0;  ///< shortest source-sink delay
  double max_delay = 0.0;  ///< longest source-sink delay

  double Skew() const { return max_delay - min_delay; }
};

/// Compute cost and delay extremes from assigned edge lengths.
TreeStats ComputeTreeStats(const Topology& topo,
                           std::span<const double> edge_len);

/// The paper's radius: distance from the source to the farthest sink when
/// the source is given, half the sink-set diameter otherwise (Section 2).
/// The diameter of one sink is 0.
double Radius(std::span<const Point> sinks, const std::optional<Point>& source);

}  // namespace lubt

#endif  // LUBT_CTS_METRICS_H_
