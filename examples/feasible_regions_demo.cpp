// Visualizing the Section 5 machinery: bottom-up feasible regions.
//
// Solves a small LUBT instance, builds the feasible regions of every
// Steiner node (tilted rectangles — segments for tight edges, fat regions
// where the LP elongates), renders them as an SVG overlay, and prints a
// textual summary of region widths. The fat regions are exactly the places
// where the solution has slack to snake wire.
//
// Usage: ./examples/feasible_regions_demo [out.svg]

#include <cstdio>

#include "ebf/solver.h"
#include "embed/feasible_region.h"
#include "embed/placer.h"
#include "io/benchmarks.h"
#include "io/svg_export.h"
#include "topo/nn_merge.h"

using namespace lubt;

int main(int argc, char** argv) {
  const char* svg_path = argc > 1 ? argv[1] : "feasible_regions.svg";

  const SinkSet set = RandomSinkSet(14, BBox({0, 0}, {1000, 800}), 2718,
                                    /*with_source=*/true);
  const double radius = Radius(set.sinks, set.source);
  const Topology topo = NnMergeTopology(set.sinks, set.source);

  // A window with real slack so several regions have nonzero width.
  EbfProblem problem;
  problem.topo = &topo;
  problem.sinks = set.sinks;
  problem.source = set.source;
  problem.bounds.assign(set.sinks.size(),
                        DelayBounds{1.1 * radius, 1.35 * radius});
  const EbfSolveResult solved = SolveEbf(problem);
  if (!solved.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 solved.status.ToString().c_str());
    return 1;
  }
  std::printf("solved: cost %.1f, window [1.10, 1.35] x R\n", solved.cost);

  auto regions =
      BuildFeasibleRegions(topo, set.sinks, set.source, solved.edge_len);
  if (!regions.ok()) {
    std::fprintf(stderr, "regions failed: %s\n",
                 regions.status().ToString().c_str());
    return 1;
  }

  // At an LP vertex most Steiner rows are tight, so the optimal solution's
  // regions are segments (exactly the zero-skew DME picture). Padding every
  // edge by 2% of the radius shows the general case: fat rectangles, the
  // freedom Theorem 4.1 quantifies.
  std::vector<double> padded = solved.edge_len;
  for (NodeId v = 0; v < topo.NumNodes(); ++v) {
    if (v != topo.Root()) padded[static_cast<std::size_t>(v)] += 0.02 * radius;
  }
  auto padded_regions =
      BuildFeasibleRegions(topo, set.sinks, set.source, padded);
  if (!padded_regions.ok()) {
    std::fprintf(stderr, "padded regions failed: %s\n",
                 padded_regions.status().ToString().c_str());
    return 1;
  }

  std::vector<SvgRegion> overlays;
  int segments = 0;
  int fat = 0;
  for (NodeId v = 0; v < topo.NumNodes(); ++v) {
    if (topo.IsSinkNode(v) || v == topo.Root()) continue;
    const Trr& tight_fr = regions->fr[static_cast<std::size_t>(v)];
    const Trr& fat_fr = padded_regions->fr[static_cast<std::size_t>(v)];
    if (tight_fr.IsEmpty() || fat_fr.IsEmpty()) continue;
    const bool is_segment = tight_fr.Width() < 1e-6 * radius;
    (is_segment ? segments : fat) += 1;
    overlays.push_back({fat_fr, "#dd8800"});   // padded: fat rectangles
    overlays.push_back({tight_fr, "#3366aa"}); // optimal: segments
    std::printf(
        "  steiner node %3d: optimal width %8.2f, padded width %8.2f\n", v,
        tight_fr.Width(), fat_fr.Width());
  }
  std::printf("%d segment regions, %d fat regions at the LP optimum\n",
              segments, fat);

  const std::string svg =
      RegionsToSvg(overlays, set.sinks, set.source);
  const Status wrote = WriteTextFile(svg_path, svg);
  std::printf("regions rendered to %s (%s)\n", svg_path,
              wrote.ToString().c_str());

  // Cross-check: the placement must land every node inside its region.
  auto embedding = EmbedTree(topo, set.sinks, set.source, solved.edge_len);
  if (!embedding.ok()) {
    std::fprintf(stderr, "embed failed: %s\n",
                 embedding.status().ToString().c_str());
    return 1;
  }
  const double tol = AutoEmbedTolerance(set.sinks);
  for (NodeId v = 0; v < topo.NumNodes(); ++v) {
    const Trr& fr = regions->fr[static_cast<std::size_t>(v)];
    if (!fr.Contains(embedding->location[static_cast<std::size_t>(v)],
                     16.0 * tol)) {
      std::fprintf(stderr, "node %d placed outside its region!\n", v);
      return 1;
    }
  }
  std::printf("every node placed inside its feasible region\n");
  return 0;
}
