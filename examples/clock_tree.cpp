// Tolerable-skew clock tree synthesis (the paper's Section 6 application).
//
// Builds a clock tree for a synthetic prim1-like netlist under a skew
// budget, compares the bounded-skew heuristic against the LP re-solve,
// evaluates both under the linear AND the Elmore model, and writes an SVG
// of the final layout (serpentine elongations drawn for real).
//
// Usage: ./examples/clock_tree [skew_budget_fraction] [out.svg]
//        (default 0.1 x radius, clock_tree.svg)

#include <cstdio>
#include <cstdlib>

#include "cts/bounded_skew_dme.h"
#include "cts/elmore_delay.h"
#include "cts/metrics.h"
#include "ebf/solver.h"
#include "embed/placer.h"
#include "embed/verifier.h"
#include "embed/wire_realizer.h"
#include "io/benchmarks.h"
#include "io/svg_export.h"

using namespace lubt;

int main(int argc, char** argv) {
  const double skew_fraction = argc > 1 ? std::atof(argv[1]) : 0.1;
  const char* svg_path = argc > 2 ? argv[2] : "clock_tree.svg";

  const SinkSet set = MakeBenchmark(BenchmarkId::kPrim1, 0.3);
  const double radius = Radius(set.sinks, set.source);
  const double budget = skew_fraction * radius;
  std::printf("clock net: %zu sinks, radius %.0f, skew budget %.0f (%.2f R)\n",
              set.sinks.size(), radius, budget, skew_fraction);

  // Heuristic bounded-skew tree (the paper's comparator class).
  auto base = BuildBoundedSkewTree(set.sinks, set.source, budget);
  if (!base.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }
  std::printf("heuristic (%s): cost %.0f, skew %.0f\n",
              base->generator.c_str(), base->cost,
              base->max_delay - base->min_delay);

  // LP re-solve on the same topology with the achieved window.
  EbfProblem problem;
  problem.topo = &base->topo;
  problem.sinks = set.sinks;
  problem.source = set.source;
  problem.bounds.assign(set.sinks.size(),
                        DelayBounds{base->min_delay, base->max_delay});
  const EbfSolveResult lubt = SolveEbf(problem);
  if (!lubt.ok()) {
    std::fprintf(stderr, "LUBT failed: %s\n", lubt.status.ToString().c_str());
    return 1;
  }
  std::printf("LUBT:            cost %.0f, skew %.0f   (%.2f%% less wire)\n",
              lubt.cost, lubt.stats.Skew(),
              100.0 * (base->cost - lubt.cost) / base->cost);

  // Wirelength is the first-order proxy for clock-net switching power
  // (C_wire scales with length); report the saving in those terms.
  ElmoreParams params;
  params.unit_resistance = 0.03;   // ohm / um, plausible M3-ish values
  params.unit_capacitance = 0.2;   // fF / um
  params.sink_load.assign(set.sinks.size(), 10.0);  // fF per clock pin
  const auto base_elmore =
      ElmoreSinkDelays(base->topo, base->edge_len, params);
  const auto lubt_elmore =
      ElmoreSinkDelays(base->topo, lubt.edge_len, params);
  auto minmax = [](const std::vector<double>& v) {
    double lo = v[0];
    double hi = v[0];
    for (const double x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    return std::pair<double, double>{lo, hi};
  };
  const auto [b_lo, b_hi] = minmax(base_elmore);
  const auto [l_lo, l_hi] = minmax(lubt_elmore);
  std::printf("Elmore check: heuristic skew %.1f, LUBT skew %.1f (ps-ish)\n",
              b_hi - b_lo, l_hi - l_lo);

  // Embed, verify, draw.
  const auto embedding =
      EmbedTree(base->topo, set.sinks, set.source, lubt.edge_len);
  if (!embedding.ok()) {
    std::fprintf(stderr, "embed failed: %s\n",
                 embedding.status().ToString().c_str());
    return 1;
  }
  const auto report =
      VerifyEmbedding(base->topo, set.sinks, set.source, lubt.edge_len,
                      embedding->location, problem.bounds);
  std::printf("verification: %s\n", report.status.ToString().c_str());

  const auto wires =
      RealizeWires(base->topo, lubt.edge_len, embedding->location,
                   /*fold_pitch=*/radius * 0.01);
  const std::string svg = EmbeddingToSvg(base->topo, set.sinks,
                                         embedding->location, wires);
  const Status wrote = WriteTextFile(svg_path, svg);
  if (wrote.ok()) {
    std::printf("layout written to %s\n", svg_path);
  } else {
    std::fprintf(stderr, "SVG write failed: %s\n", wrote.ToString().c_str());
  }
  return report.ok() ? 0 : 1;
}
