// Bounded-delay global routing with short-path (hold) fixes — the paper's
// Section 1 motivation for LOWER bounds: instead of inserting delay buffers
// on paths that are too fast, elongate their wires.
//
// A multi-terminal signal net is routed with
//   * a max-delay cap on every sink (setup),
//   * a min-delay floor on a subset of "hold critical" sinks,
// and the example shows the wirelength cost of the hold fix versus an
// unconstrained route, plus how many wires had to snake.
//
// Usage: ./examples/global_routing

#include <cstdio>

#include "cts/linear_delay.h"
#include "cts/metrics.h"
#include "ebf/solver.h"
#include "embed/placer.h"
#include "embed/verifier.h"
#include "embed/wire_realizer.h"
#include "io/benchmarks.h"
#include "topo/mst.h"

using namespace lubt;

int main() {
  // A 24-pin net; the driver sits bottom-left.
  const SinkSet net = RandomSinkSet(24, BBox({0, 0}, {800, 600}), 2024,
                                    /*with_source=*/false);
  const Point driver{40.0, 40.0};
  const double radius = Radius(net.sinks, driver);
  std::printf("net: %zu pins, driver (40, 40), radius %.0f\n",
              net.sinks.size(), radius);

  // Steiner-style topology (MST-derived) — good for min wirelength.
  const Topology topo = MstBinaryTopology(net.sinks, driver);

  auto solve = [&](const std::vector<DelayBounds>& bounds, const char* name)
      -> EbfSolveResult {
    EbfProblem problem;
    problem.topo = &topo;
    problem.sinks = net.sinks;
    problem.source = driver;
    problem.bounds = bounds;
    const EbfSolveResult r = SolveEbf(problem);
    if (r.ok()) {
      std::printf("%-22s cost %8.1f   delays [%.2f, %.2f] x R\n", name,
                  r.cost, r.stats.min_delay / radius,
                  r.stats.max_delay / radius);
    } else {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   r.status.ToString().c_str());
    }
    return r;
  };

  // (a) Unconstrained route: pure Steiner minimum for this topology.
  std::vector<DelayBounds> unconstrained(net.sinks.size(),
                                         DelayBounds{0.0, kLpInf});
  const EbfSolveResult plain = solve(unconstrained, "unconstrained");

  // (b) Setup-bounded: every sink within 1.6 x radius.
  std::vector<DelayBounds> setup(net.sinks.size(),
                                 DelayBounds{0.0, 1.6 * radius});
  const EbfSolveResult capped = solve(setup, "setup-capped");

  // (c) Setup + hold: sinks 0, 5 and 11 are hold-critical and must not be
  //     reached before 0.9 x radius.
  std::vector<DelayBounds> hold = setup;
  for (const std::size_t s : {std::size_t{0}, std::size_t{5}, std::size_t{11}}) {
    hold[s].lo = 0.9 * radius;
  }
  const EbfSolveResult fixed = solve(hold, "setup + hold fix");

  if (!plain.ok() || !capped.ok() || !fixed.ok()) return 1;

  std::printf("\nhold fix costs %.1f extra wire (%.2f%%) instead of %d delay "
              "buffers\n",
              fixed.cost - capped.cost,
              100.0 * (fixed.cost - capped.cost) / capped.cost, 3);

  // Show that the elongation really lands on the hold-critical sinks.
  const auto delays = LinearSinkDelays(topo, fixed.edge_len);
  for (const std::size_t s : {std::size_t{0}, std::size_t{5}, std::size_t{11}}) {
    std::printf("  hold sink %2zu: delay %.2f x R (floor 0.90)\n", s,
                delays[s] / radius);
  }

  // Embed + count snakes.
  const auto embedding =
      EmbedTree(topo, net.sinks, driver, fixed.edge_len);
  if (!embedding.ok()) {
    std::fprintf(stderr, "embed failed: %s\n",
                 embedding.status().ToString().c_str());
    return 1;
  }
  const auto report = VerifyEmbedding(topo, net.sinks, driver, fixed.edge_len,
                                      embedding->location, hold);
  const auto wires = RealizeWires(topo, fixed.edge_len, embedding->location);
  int snaked = 0;
  double snake_total = 0.0;
  for (const auto& w : wires) {
    if (w.snake_length > 1e-9) {
      ++snaked;
      snake_total += w.snake_length;
    }
  }
  std::printf("verification: %s; %d snaked wires carrying %.1f of detour\n",
              report.status.ToString().c_str(), snaked, snake_total);
  return report.ok() ? 0 : 1;
}
