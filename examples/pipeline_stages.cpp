// Per-sink delay windows from pipeline stages — the paper's Section 1
// pipelined-design motivation for DISTINCT bounds per flip-flop.
//
// A design with L pipeline stages has different combinational slack per
// stage, so the clock-arrival window of each stage's flip-flops differs.
// Exploiting this (useful skew) instead of forcing a common window saves
// clock wire. The example quantifies the saving on a synthetic floorplan
// where each stage occupies a vertical slice of the die.
//
// Usage: ./examples/pipeline_stages

#include <cstdio>
#include <vector>

#include "cts/linear_delay.h"
#include "cts/metrics.h"
#include "ebf/solver.h"
#include "embed/placer.h"
#include "embed/verifier.h"
#include "io/benchmarks.h"
#include "topo/nn_merge.h"
#include "util/rng.h"

using namespace lubt;

int main() {
  constexpr int kStages = 4;
  constexpr int kFlopsPerStage = 20;

  // Floorplan: stage s occupies x in [s, s+1) x 500; flops scattered inside.
  Rng rng(7);
  std::vector<Point> sinks;
  std::vector<int> stage_of;
  for (int s = 0; s < kStages; ++s) {
    for (int f = 0; f < kFlopsPerStage; ++f) {
      sinks.push_back({s * 500.0 + rng.Uniform(20.0, 480.0),
                       rng.Uniform(20.0, 480.0)});
      stage_of.push_back(s);
    }
  }
  const Point source{kStages * 250.0, 520.0};  // clock root at the top
  const double radius = Radius(sinks, source);
  std::printf("design: %d stages x %d flops, radius %.0f\n", kStages,
              kFlopsPerStage, radius);

  const Topology topo = NnMergeTopology(sinks, source);

  auto solve = [&](const std::vector<DelayBounds>& bounds, const char* name)
      -> EbfSolveResult {
    EbfProblem problem;
    problem.topo = &topo;
    problem.sinks = sinks;
    problem.source = source;
    problem.bounds = bounds;
    const EbfSolveResult r = SolveEbf(problem);
    if (r.ok()) {
      std::printf("%-28s cost %9.1f\n", name, r.cost);
    } else {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   r.status.ToString().c_str());
    }
    return r;
  };

  // (a) Conventional: one tight common window for every flop.
  std::vector<DelayBounds> common(sinks.size(),
                                  DelayBounds{1.00 * radius, 1.05 * radius});
  const EbfSolveResult conventional = solve(common, "common window [1.00,1.05]");

  // (b) Useful skew: each stage gets its own window derived from its
  //     combinational slack. Stage windows are staggered and wider where
  //     the logic is fast.
  const double stage_lo[kStages] = {0.85, 1.00, 0.90, 1.05};
  const double stage_hi[kStages] = {1.05, 1.10, 1.15, 1.20};
  std::vector<DelayBounds> staged(sinks.size());
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    const int s = stage_of[i];
    staged[i] = DelayBounds{stage_lo[s] * radius, stage_hi[s] * radius};
  }
  const EbfSolveResult useful = solve(staged, "per-stage windows");

  if (!conventional.ok() || !useful.ok()) return 1;
  std::printf("\nuseful skew saves %.1f wire (%.2f%% of the clock net)\n",
              conventional.cost - useful.cost,
              100.0 * (conventional.cost - useful.cost) / conventional.cost);

  // Per-stage arrival report for the staged solution.
  const auto delays = LinearSinkDelays(topo, useful.edge_len);
  for (int s = 0; s < kStages; ++s) {
    double lo = 1e300;
    double hi = -1e300;
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      if (stage_of[i] != s) continue;
      lo = std::min(lo, delays[i] / radius);
      hi = std::max(hi, delays[i] / radius);
    }
    std::printf("  stage %d arrivals in [%.3f, %.3f], window [%.2f, %.2f]\n",
                s, lo, hi, stage_lo[s], stage_hi[s]);
  }

  // Final verification of the staged tree.
  const auto embedding = EmbedTree(topo, sinks, source, useful.edge_len);
  if (!embedding.ok()) {
    std::fprintf(stderr, "embed failed: %s\n",
                 embedding.status().ToString().c_str());
    return 1;
  }
  const auto report = VerifyEmbedding(topo, sinks, source, useful.edge_len,
                                      embedding->location, staged);
  std::printf("verification: %s\n", report.status.ToString().c_str());
  return report.ok() ? 0 : 1;
}
