// Weighted-edge objective (Section 7, "Different weights on edges"):
// budgeting wire on premium routing resources.
//
// Clock trunks are often routed on thick low-resistance top metal that is
// scarce; leaf wiring uses cheap lower layers. Modelling this as per-edge
// objective weights (premium edges cost w > 1 per unit length), the LP
// shifts assigned length — in particular the elongation slack that a
// [l, u] window requires — from premium edges to cheap ones. The example
// measures exactly that: total assigned length on premium edges with and
// without weighting, at identical delay windows.
//
// Usage: ./examples/premium_metal

#include <cstdio>
#include <vector>

#include "cts/metrics.h"
#include "ebf/solver.h"
#include "io/benchmarks.h"
#include "topo/nn_merge.h"
#include "topo/path_query.h"

using namespace lubt;

int main() {
  const SinkSet set = RandomSinkSet(60, BBox({0, 0}, {1000, 1000}), 4242,
                                    /*with_source=*/true);
  const double radius = Radius(set.sinks, set.source);
  const Topology topo = NnMergeTopology(set.sinks, set.source);

  // Premium edges: the trunk — everything within 3 levels of the root.
  PathQuery paths(topo);
  std::vector<bool> premium(static_cast<std::size_t>(topo.NumNodes()), false);
  int premium_count = 0;
  for (NodeId v = 0; v < topo.NumNodes(); ++v) {
    if (v != topo.Root() && paths.Depth(v) <= 3) {
      premium[static_cast<std::size_t>(v)] = true;
      ++premium_count;
    }
  }
  std::printf("60-sink clock net; %d trunk edges on premium metal\n",
              premium_count);

  auto run = [&](double premium_weight, const char* name, double* premium_len,
                 double* total_len) -> bool {
    EbfProblem problem;
    problem.topo = &topo;
    problem.sinks = set.sinks;
    problem.source = set.source;
    problem.bounds.assign(set.sinks.size(),
                          DelayBounds{1.05 * radius, 1.30 * radius});
    if (premium_weight != 1.0) {
      problem.edge_weight.assign(static_cast<std::size_t>(topo.NumNodes()),
                                 1.0);
      for (NodeId v = 0; v < topo.NumNodes(); ++v) {
        if (premium[static_cast<std::size_t>(v)]) {
          problem.edge_weight[static_cast<std::size_t>(v)] = premium_weight;
        }
      }
    }
    const EbfSolveResult solved = SolveEbf(problem);
    if (!solved.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   solved.status.ToString().c_str());
      return false;
    }
    double on_premium = 0.0;
    for (NodeId v = 0; v < topo.NumNodes(); ++v) {
      if (premium[static_cast<std::size_t>(v)]) {
        on_premium += solved.edge_len[static_cast<std::size_t>(v)];
      }
    }
    std::printf("%-22s total %9.1f, premium-metal %8.1f (%.1f%%), "
                "skew window met: [%.3f, %.3f] x R\n",
                name, solved.cost, on_premium,
                100.0 * on_premium / solved.cost,
                solved.stats.min_delay / radius,
                solved.stats.max_delay / radius);
    *premium_len = on_premium;
    *total_len = solved.cost;
    return true;
  };

  double plain_premium = 0.0;
  double plain_total = 0.0;
  double weighted_premium = 0.0;
  double weighted_total = 0.0;
  if (!run(1.0, "uniform weights", &plain_premium, &plain_total)) return 1;
  if (!run(5.0, "premium weight 5x", &weighted_premium, &weighted_total)) {
    return 1;
  }

  std::printf("\npremium metal saved: %.1f (%.1f%%), total wire grew %.1f "
              "(%.1f%%)\n",
              plain_premium - weighted_premium,
              100.0 * (plain_premium - weighted_premium) / plain_premium,
              weighted_total - plain_total,
              100.0 * (weighted_total - plain_total) / plain_total);
  // The weighted LP can only reduce (or keep) the weighted objective, so
  // given the same windows, premium usage must not grow.
  return weighted_premium <= plain_premium * (1.0 + 1e-9) ? 0 : 1;
}
