// Quickstart: the whole LUBT pipeline on a ten-sink instance.
//
//   1. describe sinks and a clock source,
//   2. generate a topology (every sink a leaf),
//   3. pick per-sink delay windows,
//   4. solve the EBF linear program for optimal edge lengths,
//   5. embed the tree in the plane (Theorem 4.1 guarantees this succeeds),
//   6. verify and print the result.
//
// Build & run:  ./examples/quickstart

#include <cstdio>

#include "cts/linear_delay.h"
#include "cts/metrics.h"
#include "ebf/solver.h"
#include "embed/placer.h"
#include "embed/verifier.h"
#include "embed/wire_realizer.h"
#include "topo/nn_merge.h"

using namespace lubt;

int main() {
  // 1. The instance: ten flip-flop clock pins and a clock source.
  const std::vector<Point> sinks = {
      {12, 80}, {25, 15}, {30, 62}, {45, 92}, {51, 33},
      {60, 74}, {72, 10}, {80, 50}, {88, 85}, {95, 25},
  };
  const Point source{50, 50};
  const double radius = Radius(sinks, source);
  std::printf("instance: %zu sinks, radius (source->farthest) = %.1f\n",
              sinks.size(), radius);

  // 2. Topology: nearest-neighbour merge; every sink is a leaf, so a
  //    solution exists for ANY bounds satisfying u_i >= dist(source, sink)
  //    (Lemma 3.1).
  const Topology topo = NnMergeTopology(sinks, source);

  // 3. Delay windows: a tolerable-skew clock — every sink's delay must land
  //    in [1.05, 1.20] x radius, i.e. skew budget 0.15 x radius with a hard
  //    latency cap.
  EbfProblem problem;
  problem.topo = &topo;
  problem.sinks = sinks;
  problem.source = source;
  problem.bounds.assign(sinks.size(),
                        DelayBounds{1.05 * radius, 1.20 * radius});

  // 4. Solve the LP.
  const EbfSolveResult solved = SolveEbf(problem);
  if (!solved.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 solved.status.ToString().c_str());
    return 1;
  }
  std::printf("LP solved: wirelength = %.2f (rows=%d, %.3fs)\n", solved.cost,
              solved.lp_rows, solved.seconds);

  // 5. Embed.
  const auto embedding = EmbedTree(topo, sinks, source, solved.edge_len);
  if (!embedding.ok()) {
    std::fprintf(stderr, "embedding failed: %s\n",
                 embedding.status().ToString().c_str());
    return 1;
  }

  // 6. Verify and report.
  const VerificationReport report =
      VerifyEmbedding(topo, sinks, source, solved.edge_len,
                      embedding->location, problem.bounds);
  std::printf("verification: %s\n", report.status.ToString().c_str());
  std::printf("  total wirelength  %.2f\n", report.total_wirelength);
  std::printf("  physical routing  %.2f\n", report.total_physical);
  std::printf("  snaking slack     %.2f\n", report.total_slack);

  const std::vector<double> delays = LinearSinkDelays(topo, solved.edge_len);
  std::printf("sink delays (radius units):");
  for (const double d : delays) std::printf(" %.3f", d / radius);
  std::printf("\n");

  const auto wires =
      RealizeWires(topo, solved.edge_len, embedding->location);
  int snaked = 0;
  for (const auto& w : wires) {
    if (w.snake_length > 1e-9) ++snaked;
  }
  std::printf("%zu wires realized, %d with serpentine elongation\n",
              wires.size(), snaked);
  return report.ok() ? 0 : 1;
}
