// lubt_lint — determinism/contract checker for the LUBT tree.
//
// Usage:
//   lubt_lint [--format=text|json] <path>...   lint files / directories
//   lubt_lint --list-rules                     print the rule catalog
//
// Exit status: 0 when every scanned file is clean, 1 when there are
// findings, 2 on usage or I/O errors — so both check.sh and ctest can gate
// on "zero findings" directly.
//
// The rules live in src/lint/rules.cpp; suppressions are written in the
// source as `// lubt-lint: allow(<rule>)` on (or directly above) the line.

#include <cstdio>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "util/args.h"

namespace {

int Run(int argc, char** argv) {
  using lubt::ArgParser;
  using lubt::Result;
  lubt::Result<ArgParser> parsed = ArgParser::Parse(
      argc, argv, {"format", "list-rules", "quiet", "help"});
  if (!parsed.ok()) {
    std::fprintf(stderr, "lubt_lint: %s\n", parsed.status().message().c_str());
    return 2;
  }
  const ArgParser& args = parsed.value();

  if (args.GetBool("help", false)) {
    std::printf(
        "usage: lubt_lint [--format=text|json] [--quiet] <path>...\n"
        "       lubt_lint --list-rules\n");
    return 0;
  }

  if (args.GetBool("list-rules", false)) {
    for (const lubt::lint::Rule& rule : lubt::lint::Rules()) {
      std::printf("%-20s %s\n", rule.name, rule.summary);
    }
    return 0;
  }

  const std::string format = args.GetString("format", "text");
  if (format != "text" && format != "json") {
    std::fprintf(stderr, "lubt_lint: unknown --format '%s'\n", format.c_str());
    return 2;
  }
  if (args.Positional().empty()) {
    std::fprintf(stderr,
                 "lubt_lint: no paths given (try: lubt_lint src tools "
                 "bench)\n");
    return 2;
  }

  int files_scanned = 0;
  const Result<std::vector<lubt::lint::Finding>> findings =
      lubt::lint::LintPaths(args.Positional(), &files_scanned);
  if (!findings.ok()) {
    std::fprintf(stderr, "lubt_lint: %s\n",
                 findings.status().message().c_str());
    return 2;
  }

  if (format == "json") {
    std::printf("%s\n", lubt::lint::FormatJson(findings.value()).c_str());
  } else {
    std::fputs(lubt::lint::FormatText(findings.value()).c_str(), stdout);
    if (!args.GetBool("quiet", false)) {
      std::printf("lubt_lint: %zu finding(s) in %d file(s)\n",
                  findings.value().size(), files_scanned);
    }
  }
  return findings.value().empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
