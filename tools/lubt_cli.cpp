// lubt_cli — end-to-end LUBT runs from the command line.
//
// Reads a sink set (or generates a random one), builds a topology, solves
// the EBF LP for the requested delay window, embeds, verifies, and
// optionally exports SVG / DOT layouts.
//
// Examples:
//   lubt_cli --input my_net.sinks --lower 1.0 --upper 1.2 --svg tree.svg
//   lubt_cli --random 100 --seed 7 --skew 0.1 --topology mst
//   lubt_cli --benchmark prim1 --scale 0.2 --lower 0.9 --upper 1.1
//            --engine simplex --strategy full --refine 2   (one line)
//
// Bounds are given in radius units (radius = source to farthest sink).
// With --skew D instead of --lower/--upper, the tool runs the bounded-skew
// baseline at budget D and reuses its achieved window, like the paper's
// Table 1 flow.

#include <cstdio>
#include <string>

#include "cts/bounded_skew_dme.h"
#include "cts/linear_delay.h"
#include "cts/metrics.h"
#include "ebf/solver.h"
#include "eco/eco_session.h"
#include "embed/placer.h"
#include "embed/verifier.h"
#include "embed/wire_realizer.h"
#include "io/benchmarks.h"
#include "io/dot_export.h"
#include "io/sink_set.h"
#include "io/svg_export.h"
#include "io/tree_io.h"
#include "search/topo_optimizer.h"
#include "topo/bipartition.h"
#include "topo/mst.h"
#include "topo/nn_merge.h"
#include "topo/refine.h"
#include "util/args.h"

using namespace lubt;

namespace {

constexpr const char* kUsage = R"(usage: lubt_cli [flags]

input (one of):
  --input PATH         sink-set file ("name N / source X Y / sink X Y" lines)
  --random M           M uniform random sinks (with --seed, default die 1000^2)
  --benchmark NAME     prim1 | prim2 | r1 | r3 synthetic stand-in
  --scale F            subsample fraction for --benchmark (default 1.0)

bounds (one of):
  --lower L --upper U  delay window in radius units
  --skew D             run the bounded-skew baseline at budget D (radius
                       units) and reuse its achieved window (Table-1 flow)

options:
  --topology T         nn (default) | bipartition | mst
  --engine E           ipm (default) | simplex
  --strategy S         lazy (default) | full | reduced
  --refine N           N topology refinement passes before solving
  --eco PATH           after the initial solve, stream the ECO edit script at
                       PATH through an incremental session (move/add/remove/
                       bounds/shift; windows in radius units) and report the
                       edited tree
  --optimize-topo N    after solving, anneal over topologies for up to N
                       rounds (search/topo_optimizer) and keep the best tree
  --opt-seed N         annealer RNG seed (default 1)
  --opt-jobs N         speculative evaluation workers (default 1, 0 = auto)
  --opt-chain N        moves chained per candidate (default 0 = auto scale)
  --opt-temp F         initial temperature, fraction of cost (default 0.02)
  --seed N             seed for --random (default 1)
  --svg PATH           write the embedded layout as SVG
  --dot PATH           write the topology as Graphviz DOT
  --save PATH          write the solved tree (topology+lengths+placement)
  --quiet              suppress per-sink delay listing
)";

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n%s", message.c_str(), kUsage);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = ArgParser::Parse(
      argc, argv,
      {"input", "random", "benchmark", "scale", "lower", "upper", "skew",
       "topology", "engine", "strategy", "refine", "eco", "optimize-topo",
       "opt-seed", "opt-jobs", "opt-chain", "opt-temp", "seed", "svg", "dot",
       "save", "quiet",
       "help"});
  if (!parsed.ok()) return Fail(parsed.status().message());
  const ArgParser& args = *parsed;
  if (args.Has("help")) {
    std::printf("%s", kUsage);
    return 0;
  }

  // --- Load the instance. ---
  SinkSet set;
  if (args.Has("input")) {
    auto loaded = LoadSinkSet(args.GetString("input", ""));
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    set = std::move(*loaded);
  } else if (args.Has("random")) {
    const Result<int> m = args.GetIntFlag("random", 50, 1);
    if (!m.ok()) return Fail(m.status().message());
    const Result<int> seed = args.GetIntFlag("seed", 1, 0);
    if (!seed.ok()) return Fail(seed.status().message());
    set = RandomSinkSet(*m, BBox({0, 0}, {1000, 1000}),
                        static_cast<std::uint64_t>(*seed),
                        /*with_source=*/true);
  } else if (args.Has("benchmark")) {
    const std::string name = args.GetString("benchmark", "");
    BenchmarkId id;
    if (name == "prim1") id = BenchmarkId::kPrim1;
    else if (name == "prim2") id = BenchmarkId::kPrim2;
    else if (name == "r1") id = BenchmarkId::kR1;
    else if (name == "r3") id = BenchmarkId::kR3;
    else return Fail("unknown benchmark '" + name + "'");
    set = MakeBenchmark(id, args.GetDouble("scale", 1.0));
  } else {
    return Fail("no input given (--input, --random or --benchmark)");
  }
  if (!set.source.has_value()) {
    return Fail("the CLI currently requires a source in the instance");
  }
  const double radius = Radius(set.sinks, set.source);
  std::printf("instance '%s': %zu sinks, radius %.2f\n", set.name.c_str(),
              set.sinks.size(), radius);

  // --- Bounds and topology. ---
  Topology topo;
  double lower = 0.0;
  double upper = 0.0;
  if (args.Has("skew")) {
    const double budget = args.GetDouble("skew", 0.1) * radius;
    auto base = BuildBoundedSkewTree(set.sinks, set.source, budget);
    if (!base.ok()) return Fail(base.status().ToString());
    std::printf("baseline (%s): cost %.2f, window [%.3f, %.3f] x R\n",
                base->generator.c_str(), base->cost,
                base->min_delay / radius, base->max_delay / radius);
    topo = std::move(base->topo);
    lower = base->min_delay;
    upper = base->max_delay;
  } else {
    if (!args.Has("lower") || !args.Has("upper")) {
      return Fail("need either --skew or both --lower and --upper");
    }
    lower = args.GetDouble("lower", 0.0) * radius;
    upper = args.GetDouble("upper", 0.0) * radius;
    const std::string kind = args.GetString("topology", "nn");
    if (kind == "nn") topo = NnMergeTopology(set.sinks, set.source);
    else if (kind == "bipartition")
      topo = BipartitionTopology(set.sinks, set.source);
    else if (kind == "mst") topo = MstBinaryTopology(set.sinks, set.source);
    else return Fail("unknown topology '" + kind + "'");
  }

  // --- Optional refinement. ---
  const Result<int> refine = args.GetIntFlag("refine", 0, 0);
  if (!refine.ok()) return Fail(refine.status().message());
  const int refine_passes = *refine;
  if (refine_passes > 0) {
    RefineOptions ropt;
    ropt.max_passes = refine_passes;
    auto refined = RefineTopologyForBound(topo, set.sinks, set.source,
                                          upper - lower, ropt);
    if (!refined.ok()) return Fail(refined.status().ToString());
    std::printf("refinement: %.2f -> %.2f (%d moves)\n",
                refined->initial_cost, refined->final_cost,
                refined->moves_applied);
    topo = std::move(refined->topo);
  }

  // --- Solve. ---
  EbfProblem problem;
  problem.topo = &topo;
  problem.sinks = set.sinks;
  problem.source = set.source;
  problem.bounds.assign(set.sinks.size(), DelayBounds{lower, upper});

  EbfSolveOptions opt;
  const std::string engine = args.GetString("engine", "ipm");
  if (engine == "simplex") opt.lp.engine = LpEngine::kSimplex;
  else if (engine == "ipm") opt.lp.engine = LpEngine::kInteriorPoint;
  else return Fail("unknown engine '" + engine + "'");
  const std::string strategy = args.GetString("strategy", "lazy");
  if (strategy == "full") opt.strategy = EbfStrategy::kFullRows;
  else if (strategy == "reduced") opt.strategy = EbfStrategy::kReducedRows;
  else if (strategy == "lazy") opt.strategy = EbfStrategy::kLazy;
  else return Fail("unknown strategy '" + strategy + "'");

  std::vector<double> edge_len;
  if (args.Has("eco")) {
    // Incremental flow: initial solve inside an EcoSession, then stream the
    // edit script through it; embed/verify/export run on the edited tree.
    auto edits = LoadEditScript(args.GetString("eco", ""));
    if (!edits.ok()) return Fail(edits.status().ToString());
    EcoOptions eco_opt;
    eco_opt.solve = opt;
    auto created = EcoSession::Create(set, std::move(problem.bounds),
                                      std::move(topo), eco_opt);
    if (!created.ok()) return Fail(created.status().ToString());
    EcoSession& session = **created;
    const EcoSolveInfo& init = session.Last();
    std::printf("eco initial: %s, cost %.2f, %d rows, %.3fs\n",
                init.ok() ? "ok" : init.status.ToString().c_str(), init.cost,
                init.lp_rows, init.seconds);
    for (std::size_t i = 0; i < edits->size(); ++i) {
      const EcoEdit& edit = (*edits)[i];
      const auto info = session.Apply(ScaleEditWindows(edit, radius));
      if (!info.ok()) {
        std::fprintf(stderr, "eco edit %zu (%s) rejected: %s\n", i + 1,
                     EcoEditKindName(edit.kind),
                     info.status().ToString().c_str());
        return 1;
      }
      std::printf(
          "eco edit %zu %-6s: tier=%-12s %s cost %.2f, %d rows (+%d), "
          "%d rounds, %.3fs\n",
          i + 1, EcoEditKindName(edit.kind), EcoTierName(info->tier),
          info->ok() ? "ok" : info->status.ToString().c_str(), info->cost,
          info->lp_rows, info->rows_added, info->lazy_rounds, info->seconds);
    }
    if (!session.Last().ok()) {
      std::fprintf(stderr, "eco final state: %s\n",
                   session.Last().status.ToString().c_str());
      return 1;
    }
    const TreeStats& stats = session.Last().stats;
    std::printf("LUBT (eco): cost %.2f, window [%.3f, %.3f] x R, %d rows\n",
                session.Last().cost, stats.min_delay / radius,
                stats.max_delay / radius, session.NumLpRows());
    // Adopt the edited instance for the stages below.
    topo = session.Topo();
    set = session.Set();
    problem.bounds.assign(session.Bounds().begin(), session.Bounds().end());
    edge_len.assign(session.EdgeLengths().begin(),
                    session.EdgeLengths().end());
  } else {
    EbfSolveResult solved = SolveEbf(problem, opt);
    if (!solved.ok()) {
      std::fprintf(stderr, "solve failed: %s\n",
                   solved.status.ToString().c_str());
      return 1;
    }
    std::printf("LUBT: cost %.2f, window [%.3f, %.3f] x R, %d rows, %.3fs\n",
                solved.cost, solved.stats.min_delay / radius,
                solved.stats.max_delay / radius, solved.lp_rows,
                solved.seconds);
    edge_len = std::move(solved.edge_len);
  }

  // --- Optional topology search. ---
  const Result<int> opt_rounds = args.GetIntFlag("optimize-topo", 0, 0);
  if (!opt_rounds.ok()) return Fail(opt_rounds.status().message());
  if (*opt_rounds > 0) {
    const Result<int> opt_seed = args.GetIntFlag("opt-seed", 1, 0);
    if (!opt_seed.ok()) return Fail(opt_seed.status().message());
    const Result<int> opt_jobs = args.GetIntFlag("opt-jobs", 1, 0);
    if (!opt_jobs.ok()) return Fail(opt_jobs.status().message());
    const Result<int> opt_chain = args.GetIntFlag("opt-chain", 0, 0);
    if (!opt_chain.ok()) return Fail(opt_chain.status().message());
    TopoSearchOptions sopt;
    sopt.max_rounds = *opt_rounds;
    sopt.seed = static_cast<std::uint64_t>(*opt_seed);
    sopt.jobs = *opt_jobs;
    sopt.moves_per_candidate = *opt_chain;
    sopt.initial_temp = args.GetDouble("opt-temp", sopt.initial_temp);
    sopt.eco.solve = opt;
    auto searched =
        TopoOptimizer::Optimize(set, problem.bounds, std::move(topo), sopt);
    if (!searched.ok()) {
      std::fprintf(stderr, "topo-search failed: %s\n",
                   searched.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "topo-search: cost %.2f -> %.2f (%.2f%%), %d rounds, %d accepted "
        "(%d uphill), %.3fs\n",
        searched->initial_cost, searched->best_cost,
        100.0 * searched->Improvement(), searched->stats.rounds,
        searched->stats.accepted, searched->stats.uphill_accepted,
        searched->stats.seconds);
    topo = std::move(searched->best_topo);
    edge_len = std::move(searched->best_edge_len);
  }

  // --- Embed + verify. ---
  const auto embedding =
      EmbedTree(topo, set.sinks, set.source, edge_len);
  if (!embedding.ok()) {
    std::fprintf(stderr, "embedding failed: %s\n",
                 embedding.status().ToString().c_str());
    return 1;
  }
  const auto report =
      VerifyEmbedding(topo, set.sinks, set.source, edge_len,
                      embedding->location, problem.bounds);
  std::printf("verification: %s (wire %.2f, physical %.2f, snaking %.2f)\n",
              report.status.ToString().c_str(), report.total_wirelength,
              report.total_physical, report.total_slack);

  if (!args.GetBool("quiet", false)) {
    const auto delays = LinearSinkDelays(topo, edge_len);
    std::printf("sink delays (radius units):");
    for (const double d : delays) std::printf(" %.3f", d / radius);
    std::printf("\n");
  }

  // --- Exports. ---
  if (args.Has("dot")) {
    const Status s = WriteTextFile(args.GetString("dot", ""),
                                   TopologyToDot(topo, edge_len));
    std::printf("dot: %s\n", s.ToString().c_str());
  }
  if (args.Has("save")) {
    TreeSolution solution;
    solution.topo = topo;
    solution.edge_len = edge_len;
    solution.locations = embedding->location;
    const Status s = StoreTreeSolution(solution, args.GetString("save", ""));
    std::printf("save: %s\n", s.ToString().c_str());
  }
  if (args.Has("svg")) {
    const auto wires =
        RealizeWires(topo, edge_len, embedding->location,
                     /*fold_pitch=*/radius * 0.01);
    const Status s = WriteTextFile(
        args.GetString("svg", ""),
        EmbeddingToSvg(topo, set.sinks, embedding->location, wires));
    std::printf("svg: %s\n", s.ToString().c_str());
  }
  return report.ok() ? 0 : 1;
}
