#!/usr/bin/env bash
# Pre-merge correctness gate: configure + build + ctest under each analysis
# preset. Exits non-zero on the first compiler warning (-Werror), sanitizer
# finding (-fno-sanitize-recover=all turns every report into a test
# failure), clang-tidy diagnostic, or test failure.
#
# Usage:
#   tools/check.sh             # default + asan + ubsan + tsan
#                              # (+ tidy / thread-safety when clang is
#                              # installed; SKIPPED lines otherwise)
#   tools/check.sh asan ubsan  # just the named presets
#
# Environment:
#   JOBS=N               build parallelism (default: nproc)
#   SELF_CHECK_SEEDS=N   extra randomized sweep size per sanitizer (default 40)
#   SELF_CHECK_ECO_OPS=N random ECO edits per sweep case, each cross-checked
#                        against a cold re-solve (default 3)

set -u -o pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
SELF_CHECK_SEEDS="${SELF_CHECK_SEEDS:-40}"
SELF_CHECK_ECO_OPS="${SELF_CHECK_ECO_OPS:-3}"

# Sanitizer runtime policy: abort on the first finding so ctest sees it.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:abort_on_error=1:print_stacktrace=1"
export TSAN_OPTIONS="halt_on_error=1:abort_on_error=1:second_deadlock_stack=1"

if [[ $# -gt 0 ]]; then
  presets=("$@")
else
  presets=(default asan ubsan tsan)
  if command -v clang-tidy > /dev/null 2>&1; then
    presets+=(tidy)
  else
    echo "SKIPPED (clang-tidy not installed): tidy preset"
  fi
  # Clang's -Wthread-safety analysis needs the annotated build compiled by
  # clang itself; gcc accepts the attributes as no-ops but runs no analysis.
  if command -v clang++ > /dev/null 2>&1; then
    presets+=(thread-safety)
  else
    echo "SKIPPED (clang not installed): thread-safety preset"
  fi
fi

failed=()
for preset in "${presets[@]}"; do
  echo "==== [$preset] configure ===="
  if ! cmake --preset "$preset" > "/tmp/lubt-check-$preset-configure.log" 2>&1; then
    tail -40 "/tmp/lubt-check-$preset-configure.log"
    failed+=("$preset (configure)")
    continue
  fi
  echo "==== [$preset] build ===="
  if ! cmake --build --preset "$preset" -j "$JOBS" \
       > "/tmp/lubt-check-$preset-build.log" 2>&1; then
    grep -E "error|warning" "/tmp/lubt-check-$preset-build.log" | head -50
    tail -10 "/tmp/lubt-check-$preset-build.log"
    failed+=("$preset (build)")
    continue
  fi
  echo "==== [$preset] ctest ===="
  # tsan is 5-15x slower, so its gate is the concurrency-relevant slice:
  # the runtime subsystem tests, batch determinism, and the concurrent
  # tool drivers — everything that actually multithreads.
  ctest_args=()
  if [[ "$preset" == "tsan" ]]; then
    ctest_args=(-R "runtime|Batch|Determinism|self_check|lubt_batch|Eco|Serve|Search")
  fi
  if ! ctest --preset "$preset" "${ctest_args[@]}" \
       > "/tmp/lubt-check-$preset-test.log" 2>&1; then
    # Re-print the failing tests with their output.
    grep -E "Failed|Timeout|\*\*\*" "/tmp/lubt-check-$preset-test.log" | head -30
    failed+=("$preset (ctest)")
    continue
  fi
  tail -3 "/tmp/lubt-check-$preset-test.log" | sed "s/^/[$preset] /"

  # Sanitizer presets additionally run a wider randomized sweep than the
  # quick slice registered under ctest. tsan runs it in parallel so the
  # sweep exercises genuinely concurrent solves.
  if [[ "$preset" == "asan" || "$preset" == "ubsan" || "$preset" == "tsan" ]]; then
    sweep_jobs=1
    [[ "$preset" == "tsan" ]] && sweep_jobs=4
    echo "==== [$preset] self_check --seeds $SELF_CHECK_SEEDS --eco-ops $SELF_CHECK_ECO_OPS --jobs $sweep_jobs ===="
    if ! "./build-$preset/tools/self_check" --seeds "$SELF_CHECK_SEEDS" \
         --eco-ops "$SELF_CHECK_ECO_OPS" --jobs "$sweep_jobs" --quiet; then
      failed+=("$preset (self_check)")
      continue
    fi
  fi

  # Engine agreement gates: lp_scaling --smoke solves fixed instances under
  # all four normal-equation x warm-start variants and fails on any
  # objective disagreement; separation_scaling --smoke additionally demands
  # the octant separation oracle return bitwise-identical rows to the
  # brute-force scan (serial and threaded) and the grid NN-merge match the
  # scan backend node for node; eco_scaling --smoke replays fixed edit
  # streams and fails unless every incremental re-solve matches a cold
  # solve of the edited instance. Skipped for tsan (single-threaded here;
  # the slow tsan build is reserved for the concurrency slice above, whose
  # self_check sweep already drives the octant oracle and the eco engine
  # with --jobs workers).
  # Static contract gate: lubt_lint must report zero findings over the
  # real tree (unchecked Result access, nondeterminism sources, unordered
  # iteration, float ==, missing finite-boundary checks, include hygiene).
  # Same invocation as the lubt_lint_tree ctest; repeated here so a direct
  # `check.sh default` run prints the findings on the console.
  if [[ "$preset" == "default" ]]; then
    echo "==== [$preset] lubt_lint src tools bench ===="
    if ! "./build-$preset/tools/lubt_lint" src tools bench; then
      failed+=("$preset (lubt_lint)")
      continue
    fi

    # 16k-sink envelope gates (default preset only: sanitizer builds are
    # not timings). lp_scaling --kernel refactors the 4096/16384-sink
    # normal equations supernodal vs simplicial and enforces the
    # hardware-aware speedup floor plus Solve() equivalence;
    # separation_scaling --big runs the sampled 16k protocol (SoA vs AoS vs
    # round-0 brute force, grid-soa vs grid topology) with bitwise row
    # agreement and its own speedup floors. BIG_SINKS overrides the
    # separation size (e.g. 4096 for a quick local loop).
    echo "==== [$preset] lp_scaling --kernel (16k factor gate) ===="
    if ! "./build-$preset/bench/lp_scaling" --kernel \
         > "/tmp/lubt-check-$preset-lp-kernel.log" 2>&1; then
      tail -20 "/tmp/lubt-check-$preset-lp-kernel.log"
      failed+=("$preset (lp_scaling --kernel)")
      continue
    fi
    tail -4 "/tmp/lubt-check-$preset-lp-kernel.log" | sed "s/^/[$preset] /"
    echo "==== [$preset] separation_scaling --big ${BIG_SINKS:-16384} (16k SoA gate) ===="
    if ! "./build-$preset/bench/separation_scaling" --big "${BIG_SINKS:-16384}" \
         > "/tmp/lubt-check-$preset-sep-big.log" 2>&1; then
      tail -20 "/tmp/lubt-check-$preset-sep-big.log"
      failed+=("$preset (separation_scaling --big)")
      continue
    fi
    tail -2 "/tmp/lubt-check-$preset-sep-big.log" | sed "s/^/[$preset] /"

    # Committed bench artifacts must exist and be non-empty: the scaling
    # curves quoted in EXPERIMENTS.md are regenerated by running the full
    # benches from the repo root, and a missing JSON means a curve was
    # silently dropped from a refresh.
    echo "==== [$preset] bench artifacts present ===="
    for artifact in BENCH_lp.json BENCH_sep.json BENCH_eco.json BENCH_serve.json BENCH_topo.json; do
      if [[ ! -s "$artifact" ]]; then
        echo "missing bench artifact: $artifact (run the full bench to regenerate)"
        failed+=("$preset ($artifact missing)")
        continue 2
      fi
    done
    echo "[$preset] all bench artifacts present"
  fi

  # serve_load --smoke drives a real unix-socket server with concurrent
  # clients and a cache budget below the session count, gating on every
  # response succeeding AND on the stats showing actual evict/restore
  # cycles — the server stack's end-to-end smoke.
  if [[ "$preset" == "default" || "$preset" == "asan" || "$preset" == "ubsan" ]]; then
    for smoke in lp_scaling separation_scaling eco_scaling serve_load topo_search; do
      echo "==== [$preset] $smoke --smoke ===="
      if ! "./build-$preset/bench/$smoke" --smoke \
           > "/tmp/lubt-check-$preset-$smoke-smoke.log" 2>&1; then
        tail -20 "/tmp/lubt-check-$preset-$smoke-smoke.log"
        failed+=("$preset ($smoke)")
        continue 2
      fi
      tail -1 "/tmp/lubt-check-$preset-$smoke-smoke.log" | sed "s/^/[$preset] /"
    done
  fi
done

echo
if [[ ${#failed[@]} -gt 0 ]]; then
  echo "check.sh: FAILED: ${failed[*]}"
  exit 1
fi
echo "check.sh: all presets clean (${presets[*]})"
