#!/usr/bin/env bash
# Pre-merge correctness gate: configure + build + ctest under each analysis
# preset. Exits non-zero on the first compiler warning (-Werror), sanitizer
# finding (-fno-sanitize-recover=all turns every report into a test
# failure), clang-tidy diagnostic, or test failure.
#
# Usage:
#   tools/check.sh             # default + asan + ubsan (+ tidy if available)
#   tools/check.sh asan ubsan  # just the named presets
#
# Environment:
#   JOBS=N             build parallelism (default: nproc)
#   SELF_CHECK_SEEDS=N extra randomized sweep size per sanitizer (default 40)

set -u -o pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
SELF_CHECK_SEEDS="${SELF_CHECK_SEEDS:-40}"

# Sanitizer runtime policy: abort on the first finding so ctest sees it.
export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:abort_on_error=1:print_stacktrace=1"

if [[ $# -gt 0 ]]; then
  presets=("$@")
else
  presets=(default asan ubsan)
  if command -v clang-tidy > /dev/null 2>&1; then
    presets+=(tidy)
  else
    echo "check.sh: clang-tidy not found; skipping the tidy preset" >&2
  fi
fi

failed=()
for preset in "${presets[@]}"; do
  echo "==== [$preset] configure ===="
  if ! cmake --preset "$preset" > "/tmp/lubt-check-$preset-configure.log" 2>&1; then
    tail -40 "/tmp/lubt-check-$preset-configure.log"
    failed+=("$preset (configure)")
    continue
  fi
  echo "==== [$preset] build ===="
  if ! cmake --build --preset "$preset" -j "$JOBS" \
       > "/tmp/lubt-check-$preset-build.log" 2>&1; then
    grep -E "error|warning" "/tmp/lubt-check-$preset-build.log" | head -50
    tail -10 "/tmp/lubt-check-$preset-build.log"
    failed+=("$preset (build)")
    continue
  fi
  echo "==== [$preset] ctest ===="
  if ! ctest --preset "$preset" > "/tmp/lubt-check-$preset-test.log" 2>&1; then
    # Re-print the failing tests with their output.
    grep -E "Failed|Timeout|\*\*\*" "/tmp/lubt-check-$preset-test.log" | head -30
    failed+=("$preset (ctest)")
    continue
  fi
  tail -3 "/tmp/lubt-check-$preset-test.log" | sed "s/^/[$preset] /"

  # Sanitizer presets additionally run a wider randomized sweep than the
  # quick slice registered under ctest.
  if [[ "$preset" == "asan" || "$preset" == "ubsan" || "$preset" == "tsan" ]]; then
    echo "==== [$preset] self_check --seeds $SELF_CHECK_SEEDS ===="
    if ! "./build-$preset/tools/self_check" --seeds "$SELF_CHECK_SEEDS" \
         --quiet; then
      failed+=("$preset (self_check)")
      continue
    fi
  fi
done

echo
if [[ ${#failed[@]} -gt 0 ]]; then
  echo "check.sh: FAILED: ${failed[*]}"
  exit 1
fi
echo "check.sh: all presets clean (${presets[*]})"
