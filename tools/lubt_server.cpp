// lubt_server: long-lived LUBT solver service (DESIGN.md §15).
//
// Serves the serve/protocol.h JSON protocol over length-prefixed frames on
// a Unix or loopback TCP socket, keeping named EcoSessions alive across
// requests so an ECO loop pays the cold solve once and every subsequent
// edit hits the incremental engine. Sessions beyond the cache budget are
// transparently checkpointed to the spill directory and restored bitwise
// on next touch.
//
//   lubt_server --socket /tmp/lubt.sock --spill-dir /tmp/lubt-spill
//   lubt_server --port 0 --spill-dir /tmp/lubt-spill     (prints the port)
//
// Loopback mode (no sockets): --once reads one JSON request per line from
// --input (or stdin), answers on stdout in order, and exits at EOF or
// after a shutdown request — the golden-test and scripting entry point:
//
//   lubt_server --once --deterministic --spill-dir /tmp/s
//       --input examples/serve_demo.jsonl
//
// --deterministic zeroes wall-clock response fields so byte-identical runs
// produce byte-identical transcripts.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <sys/stat.h>

#include "serve/dispatcher.h"
#include "serve/server.h"
#include "util/args.h"

using namespace lubt;

namespace {

int Usage() {
  std::printf(
      "lubt_server: persistent LUBT/ECO solver service\n"
      "  --socket PATH      listen on a unix-domain socket\n"
      "  --port N           listen on 127.0.0.1:N (0 = ephemeral, printed)\n"
      "  --once             serve line-delimited requests from --input or\n"
      "                     stdin, then exit (no sockets)\n"
      "  --input FILE       request source for --once (default stdin)\n"
      "  --spill-dir PATH   checkpoint directory for evicted sessions\n"
      "                     (default lubt_server_spill; created if absent)\n"
      "  --max-resident N   session cache entry budget (default 16)\n"
      "  --max-bytes MB     session cache memory budget (default 512)\n"
      "  --max-pending N    reject when N requests are queued (default 256)\n"
      "  --jobs N           worker threads (default: hardware threads)\n"
      "  --deterministic    zero wall-clock fields in responses\n");
  return 0;
}

// The spill directory must exist before the first eviction; creating it at
// startup turns a mid-run surprise into an immediate startup error.
bool EnsureDir(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0) return S_ISDIR(st.st_mode);
  return ::mkdir(path.c_str(), 0700) == 0;
}

int RunOnce(Dispatcher& dispatcher, std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    // Skip blank and '#'-comment lines so demo transcripts can annotate
    // themselves (JSON itself has no comments).
    std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::printf("%s\n", dispatcher.HandleSync(line).c_str());
    std::fflush(stdout);
    if (dispatcher.ShutdownRequested()) break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = ArgParser::Parse(
      argc, argv,
      {"socket", "port", "once", "input", "spill-dir", "max-resident",
       "max-bytes", "max-pending", "jobs", "deterministic", "help"});
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  if (parsed->Has("help")) return Usage();

  const Result<int> max_resident = parsed->GetIntFlag("max-resident", 16, 1);
  const Result<int> max_bytes_mb = parsed->GetIntFlag("max-bytes", 512, 1);
  const Result<int> max_pending = parsed->GetIntFlag("max-pending", 256, 0);
  const Result<int> port = parsed->GetIntFlag("port", -1, -1, 65535);
  const Result<int> jobs = parsed->GetJobsFlag(0);
  if (!max_resident.ok() || !max_bytes_mb.ok() || !max_pending.ok() ||
      !port.ok() || !jobs.ok()) {
    const Status& bad = !max_resident.ok()   ? max_resident.status()
                        : !max_bytes_mb.ok() ? max_bytes_mb.status()
                        : !max_pending.ok()  ? max_pending.status()
                        : !port.ok()         ? port.status()
                                             : jobs.status();
    std::fprintf(stderr, "%s\n", bad.ToString().c_str());
    return 2;
  }

  DispatcherOptions options;
  options.jobs = *jobs;
  options.max_pending = *max_pending;
  options.deterministic = parsed->GetBool("deterministic", false);
  options.cache.max_resident = *max_resident;
  options.cache.max_resident_bytes =
      static_cast<std::size_t>(*max_bytes_mb) << 20;
  options.cache.spill_dir =
      parsed->GetString("spill-dir", "lubt_server_spill");
  if (!EnsureDir(options.cache.spill_dir)) {
    std::fprintf(stderr, "lubt_server: cannot create spill dir '%s'\n",
                 options.cache.spill_dir.c_str());
    return 2;
  }
  Dispatcher dispatcher(options);

  if (parsed->GetBool("once", false)) {
    const std::string input = parsed->GetString("input", "");
    if (input.empty()) return RunOnce(dispatcher, std::cin);
    std::ifstream file(input);
    if (!file) {
      std::fprintf(stderr, "lubt_server: cannot read --input '%s'\n",
                   input.c_str());
      return 2;
    }
    return RunOnce(dispatcher, file);
  }

  ServerOptions server_options;
  server_options.unix_path = parsed->GetString("socket", "");
  server_options.tcp_port = *port;
  if (server_options.unix_path.empty() && server_options.tcp_port < 0) {
    std::fprintf(stderr,
                 "lubt_server: need --socket, --port, or --once "
                 "(--help for usage)\n");
    return 2;
  }
  Result<std::unique_ptr<Server>> server =
      Server::Listen(server_options, &dispatcher);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  if (!server_options.unix_path.empty()) {
    std::printf("lubt_server: listening on %s\n",
                server_options.unix_path.c_str());
  } else {
    std::printf("lubt_server: listening on 127.0.0.1:%d\n",
                (*server)->Port());
  }
  std::fflush(stdout);
  (*server)->Run();
  std::printf("lubt_server: shut down\n");
  return 0;
}
