// lubt_batch — solve many independent LUBT jobs concurrently.
//
// A deployment solves a tree per net over thousands of nets; this driver is
// that workload in miniature. Jobs come from a manifest file (one job per
// line) or a seeded generator, run on a worker pool via SolveBatch, and are
// reported in submission order with per-stage timings plus aggregate
// throughput.
//
// Manifest format: '#' comments; otherwise one job per line as
// whitespace-separated key=value tokens:
//
//   sinks=40 seed=7 clustered=0      random instance (die 1000x1000)
//   bench=prim1 scale=0.2            or: synthetic benchmark stand-in
//   topo=nn|mst|bipartition          topology generator (default nn)
//   lower=0.9 upper=1.2              delay window in radius units
//                                    (upper=inf for Steiner-only)
//   engine=ipm|simplex strategy=lazy|full|reduced
//   bound=SINK:LO:HI                 per-sink window override (radius units,
//                                    repeatable; HI may be inf)
//   edits=PATH                       ECO edit script (eco/edit_script.h
//                                    format, windows in radius units) applied
//                                    incrementally after the initial solve;
//                                    relative PATH resolves against the
//                                    manifest's directory
//   opt=N opt-seed=S                 anneal over topologies for up to N
//                                    rounds after the solve (seeded SA,
//                                    search/topo_optimizer.h) and keep the
//                                    best tree
//   timeout=SECONDS                  cooperative per-job deadline
//   name=NET7 expect=ok|infeasible   optional label / outcome assertion
//
// Examples:
//   lubt_batch --gen 64 --seed 1 --jobs 4
//   lubt_batch --manifest examples/batch_demo.manifest --jobs 0   # 0 = auto
//   lubt_batch --manifest examples/eco_demo.manifest

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "geom/bbox.h"
#include "io/benchmarks.h"
#include "io/csv.h"
#include "runtime/batch_solver.h"
#include "util/args.h"
#include "util/rng.h"
#include "util/table.h"

using namespace lubt;

namespace {

constexpr const char* kUsage = R"(usage: lubt_batch [flags]

jobs (one of):
  --manifest PATH      job-per-line manifest (see header comment for keys)
  --gen N              generate N random jobs from --seed

options:
  --jobs N             worker threads (default 1; 0 = hardware concurrency)
  --seed S             generator seed for --gen (default 1)
  --min-sinks M        smallest generated instance (default 12)
  --max-sinks M        largest generated instance (default 32)
  --csv PATH           also write the per-job table as CSV
  --quiet              only print the summary line
)";

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n%s", message.c_str(), kUsage);
  return 2;
}

struct ManifestJob {
  BatchJob job;
  /// "" = any non-error outcome accepted; else the JobOutcomeName to match.
  std::string expect;
};

// "SINK:LO:HI" with HI optionally "inf".
Result<BoundOverride> ParseBoundOverride(const std::string& value,
                                         const std::string& where) {
  const std::size_t c1 = value.find(':');
  const std::size_t c2 = c1 == std::string::npos ? std::string::npos
                                                 : value.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) {
    return Status::InvalidArgument(where + "bound must be SINK:LO:HI, got '" +
                                   value + "'");
  }
  BoundOverride o;
  o.sink = std::atoi(value.substr(0, c1).c_str());
  o.lower = std::atof(value.substr(c1 + 1, c2 - c1 - 1).c_str());
  const std::string hi = value.substr(c2 + 1);
  o.upper = hi == "inf" ? kLpInf : std::atof(hi.c_str());
  return o;
}

Result<ManifestJob> ParseManifestLine(const std::string& line, int line_no,
                                      const std::string& manifest_dir) {
  ManifestJob out;
  BatchJob& job = out.job;
  int sinks = 0;
  std::uint64_t seed = 1;
  bool clustered = false;
  std::string bench;
  double scale = 1.0;
  std::istringstream tokens(line);
  std::string token;
  const std::string where = "manifest line " + std::to_string(line_no) + ": ";
  while (tokens >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(where + "token '" + token +
                                     "' is not key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "name") {
      job.name = value;
    } else if (key == "sinks") {
      sinks = std::atoi(value.c_str());
    } else if (key == "seed") {
      seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (key == "clustered") {
      clustered = value == "1" || value == "true";
    } else if (key == "bench") {
      bench = value;
    } else if (key == "scale") {
      scale = std::atof(value.c_str());
    } else if (key == "topo") {
      if (value == "nn") job.topology = BatchTopology::kNnMerge;
      else if (value == "mst") job.topology = BatchTopology::kMst;
      else if (value == "bipartition")
        job.topology = BatchTopology::kBipartition;
      else
        return Status::InvalidArgument(where + "unknown topo '" + value + "'");
    } else if (key == "lower") {
      job.lower = std::atof(value.c_str());
    } else if (key == "upper") {
      job.upper = value == "inf" ? kLpInf : std::atof(value.c_str());
    } else if (key == "engine") {
      if (value == "ipm") job.options.lp.engine = LpEngine::kInteriorPoint;
      else if (value == "simplex") job.options.lp.engine = LpEngine::kSimplex;
      else
        return Status::InvalidArgument(where + "unknown engine '" + value +
                                       "'");
    } else if (key == "strategy") {
      if (value == "lazy") job.options.strategy = EbfStrategy::kLazy;
      else if (value == "full") job.options.strategy = EbfStrategy::kFullRows;
      else if (value == "reduced")
        job.options.strategy = EbfStrategy::kReducedRows;
      else
        return Status::InvalidArgument(where + "unknown strategy '" + value +
                                       "'");
    } else if (key == "bound") {
      Result<BoundOverride> o = ParseBoundOverride(value, where);
      if (!o.ok()) return o.status();
      job.bound_overrides.push_back(*o);
    } else if (key == "edits") {
      std::string path = value;
      if (!path.empty() && path[0] != '/' && !manifest_dir.empty()) {
        path = manifest_dir + "/" + path;
      }
      Result<std::vector<EcoEdit>> edits = LoadEditScript(path);
      if (!edits.ok()) {
        return Status::InvalidArgument(where + edits.status().ToString());
      }
      job.eco_edits = std::move(*edits);
    } else if (key == "opt") {
      job.opt_rounds = std::atoi(value.c_str());
      if (job.opt_rounds < 0) {
        return Status::InvalidArgument(where + "opt must be >= 0");
      }
    } else if (key == "opt-seed") {
      job.opt_seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (key == "timeout") {
      job.timeout_seconds = std::atof(value.c_str());
    } else if (key == "expect") {
      if (value != "ok" && value != "infeasible") {
        return Status::InvalidArgument(where + "expect must be ok|infeasible");
      }
      out.expect = value;
    } else {
      return Status::InvalidArgument(where + "unknown key '" + key + "'");
    }
  }
  if (!bench.empty()) {
    BenchmarkId id;
    if (bench == "prim1") id = BenchmarkId::kPrim1;
    else if (bench == "prim2") id = BenchmarkId::kPrim2;
    else if (bench == "r1") id = BenchmarkId::kR1;
    else if (bench == "r3") id = BenchmarkId::kR3;
    else
      return Status::InvalidArgument(where + "unknown bench '" + bench + "'");
    job.set = MakeBenchmark(id, scale);
  } else if (sinks > 0) {
    const BBox die({0.0, 0.0}, {1000.0, 1000.0});
    job.set = clustered
                  ? ClusteredSinkSet(sinks, 4, die, seed, /*with_source=*/true)
                  : RandomSinkSet(sinks, die, seed, /*with_source=*/true);
  } else {
    return Status::InvalidArgument(where + "needs sinks=N or bench=NAME");
  }
  if (job.name.empty()) job.name = job.set.name;
  return out;
}

Result<std::vector<ManifestJob>> LoadManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open manifest '" + path + "'");
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string() : path.substr(0, slash);
  std::vector<ManifestJob> jobs;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Result<ManifestJob> job = ParseManifestLine(line, line_no, dir);
    if (!job.ok()) return job.status();
    jobs.push_back(std::move(*job));
  }
  if (jobs.empty()) {
    return Status::InvalidArgument("manifest '" + path + "' has no jobs");
  }
  return jobs;
}

// Seeded batch: feasible windows (upper >= 1 always admits a tree, since
// snaking can only lengthen paths and every path must cover its distance).
std::vector<ManifestJob> GenerateJobs(int count, std::uint64_t seed,
                                      int min_sinks, int max_sinks) {
  std::vector<ManifestJob> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  const BBox die({0.0, 0.0}, {1000.0, 1000.0});
  for (int i = 0; i < count; ++i) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(i));
    ManifestJob mj;
    BatchJob& job = mj.job;
    const int sinks = rng.UniformInt(min_sinks, max_sinks);
    const std::uint64_t instance_seed = rng.Next();
    job.set = rng.Bernoulli(0.3)
                  ? ClusteredSinkSet(sinks, 4, die, instance_seed, true)
                  : RandomSinkSet(sinks, die, instance_seed, true);
    job.name = "gen" + std::to_string(i);
    job.topology =
        rng.Bernoulli(0.3) ? BatchTopology::kMst : BatchTopology::kNnMerge;
    job.upper = rng.Uniform(1.05, 1.6);
    job.lower = rng.Uniform(0.0, 0.95);
    mj.expect = "ok";
    jobs.push_back(std::move(mj));
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = ArgParser::Parse(
      argc, argv,
      {"manifest", "gen", "jobs", "seed", "min-sinks", "max-sinks", "csv",
       "quiet", "help"});
  if (!parsed.ok()) return Fail(parsed.status().message());
  const ArgParser& args = *parsed;
  if (args.Has("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  const Result<int> workers = args.GetJobsFlag(1);
  if (!workers.ok()) return Fail(workers.status().message());
  const Result<int> min_sinks = args.GetIntFlag("min-sinks", 12, 2);
  const Result<int> max_sinks = args.GetIntFlag("max-sinks", 32, 2);
  const Result<int> seed = args.GetIntFlag("seed", 1, 0);
  if (!min_sinks.ok()) return Fail(min_sinks.status().message());
  if (!max_sinks.ok()) return Fail(max_sinks.status().message());
  if (!seed.ok()) return Fail(seed.status().message());
  const bool quiet = args.GetBool("quiet", false);

  std::vector<ManifestJob> manifest;
  if (args.Has("manifest")) {
    auto loaded = LoadManifest(args.GetString("manifest", ""));
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    manifest = std::move(*loaded);
  } else if (args.Has("gen")) {
    const Result<int> count = args.GetIntFlag("gen", 8, 1, 100000);
    if (!count.ok()) return Fail(count.status().message());
    if (*max_sinks < *min_sinks) return Fail("--max-sinks below --min-sinks");
    manifest = GenerateJobs(*count, static_cast<std::uint64_t>(*seed),
                            *min_sinks, *max_sinks);
  } else {
    return Fail("no jobs given (--manifest or --gen)");
  }

  std::vector<BatchJob> jobs;
  jobs.reserve(manifest.size());
  for (const ManifestJob& mj : manifest) jobs.push_back(mj.job);

  const BatchResult batch = SolveBatch(jobs, BatchOptions{.workers = *workers});

  TextTable table({"job", "sinks", "topo", "window", "outcome", "cost",
                   "rows", "topo s", "solve s", "embed s"});
  bool all_ok = true;
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    const BatchJob& job = jobs[i];
    const BatchJobResult& r = batch.results[i];
    const std::string window =
        "[" + FormatDouble(job.lower, 2) + ", " +
        (job.upper >= kLpInf ? std::string("inf") : FormatDouble(job.upper, 2)) +
        "]";
    table.AddRow({job.name, std::to_string(job.set.sinks.size()),
                  BatchTopologyName(job.topology), window,
                  JobOutcomeName(r.outcome),
                  r.ok() ? FormatCost(r.cost) : "-", std::to_string(r.lp_rows),
                  FormatDouble(r.seconds.topo, 3),
                  FormatDouble(r.seconds.solve, 3),
                  FormatDouble(r.seconds.embed, 3)});
    const std::string& expect = manifest[i].expect;
    if (!expect.empty() && expect != JobOutcomeName(r.outcome)) {
      std::fprintf(stderr, "MISMATCH %s: expected %s, got %s (%s)\n",
                   job.name.c_str(), expect.c_str(), JobOutcomeName(r.outcome),
                   r.status.ToString().c_str());
      all_ok = false;
    } else if (r.outcome == JobOutcome::kError) {
      std::fprintf(stderr, "ERROR %s: %s\n", job.name.c_str(),
                   r.status.ToString().c_str());
      all_ok = false;
    }
  }
  if (!quiet) std::printf("%s", table.ToString().c_str());
  if (args.Has("csv")) {
    const Status csv = WriteCsv(table, args.GetString("csv", ""));
    if (!csv.ok()) {
      std::fprintf(stderr, "CSV write failed: %s\n", csv.ToString().c_str());
    }
  }
  const BatchStats& s = batch.stats;
  std::printf(
      "batch: %d jobs on %d workers in %.3fs — %.2f jobs/s "
      "(ok %d, infeasible %d, error %d, timed-out %d; job-seconds %.3f)\n",
      s.num_jobs, *workers, s.wall_seconds, s.jobs_per_second, s.num_ok,
      s.num_infeasible, s.num_error, s.num_timed_out, s.job_seconds);
  return all_ok ? 0 : 1;
}
