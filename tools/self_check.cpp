// Randomized end-to-end self-check of the topology → EBF → LP → embed
// pipeline with every src/check validator enabled unconditionally.
//
// Each seed draws a random instance (uniform or clustered sinks, fixed or
// free source, NN-merge or MST topology), a random bounds regime, and a
// random solver configuration, then asserts the full invariant chain:
//
//   ValidateTopology      on the generated topology,
//   ValidateModel         on the built LP (via SolveLp's boundary gate),
//   ValidateEdgeLengths   on the solved lengths (Steiner + delay windows),
//   ValidateEmbedding     on the placed tree (realizability + bounds),
//
// and that deliberately infeasible windows are *reported* as kInfeasible
// rather than mis-solved. This binary is the designated workload for the
// asan/ubsan presets (tools/check.sh) and runs under ctest at small scale,
// so every sanitizer finding or invariant break fails the pre-merge gate.

#include <cstdio>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "cts/bounded_skew_dme.h"
#include "runtime/thread_pool.h"
#include "cts/metrics.h"
#include "ebf/solver.h"
#include "eco/eco_session.h"
#include "embed/placer.h"
#include "geom/bbox.h"
#include "io/benchmarks.h"
#include "topo/mst.h"
#include "topo/nn_merge.h"
#include "topo/validate.h"
#include "util/args.h"
#include "util/rng.h"

namespace lubt {
namespace {

// One of the bounds regimes a seed can draw.
enum class BoundsRegime {
  kAchievedWindow,  // baseline tree's achieved [min, max] delays (feasible)
  kSteinerOnly,     // l = 0, u = inf (plain Steiner objective, feasible)
  kZeroSkew,        // l = u = achieved max delay (feasible, fast-path prone)
  kInfeasible,      // u below the farthest sink's distance (must reject)
};

const char* RegimeName(BoundsRegime regime) {
  switch (regime) {
    case BoundsRegime::kAchievedWindow:
      return "achieved-window";
    case BoundsRegime::kSteinerOnly:
      return "steiner-only";
    case BoundsRegime::kZeroSkew:
      return "zero-skew";
    case BoundsRegime::kInfeasible:
      return "infeasible";
  }
  return "unknown";
}

struct CaseConfig {
  std::uint64_t seed = 0;
  int num_sinks = 0;
  bool clustered = false;
  bool with_source = false;
  bool mst_topology = false;
  /// NN-merge backend when !mst_topology (grid-soa / grid / scan draw).
  NnMergeAccel nn_accel = NnMergeAccel::kGridSoa;
  BoundsRegime regime = BoundsRegime::kAchievedWindow;
  EbfSolveOptions options;
  /// When > 0, follow the cold solve with this many random ECO edits, each
  /// cross-checked against a cold solve of the edited instance.
  int eco_ops = 0;
};

std::string Describe(const CaseConfig& c) {
  std::string out = "seed " + std::to_string(c.seed) + ": m=" +
                    std::to_string(c.num_sinks);
  out += c.clustered ? " clustered" : " uniform";
  out += c.with_source ? " fixed-source" : " free-source";
  out += c.mst_topology ? " mst"
                        : std::string(" nn-") + NnMergeAccelName(c.nn_accel);
  out += std::string(" ") + RegimeName(c.regime);
  out += std::string(" ") + LpEngineName(c.options.lp.engine);
  if (c.options.lp.engine == LpEngine::kInteriorPoint) {
    out += std::string("/") + IpmFactorModeName(c.options.lp.factor_mode);
  }
  out += std::string(" ") + EbfStrategyName(c.options.strategy);
  if (c.options.strategy == EbfStrategy::kLazy) {
    out += std::string(" sep=") + SeparationModeName(c.options.separation);
  }
  return out;
}

// Draw every stochastic choice for one seed.
CaseConfig DrawCase(std::uint64_t seed, int min_sinks, int max_sinks) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  CaseConfig c;
  c.seed = seed;
  c.num_sinks = rng.UniformInt(min_sinks, max_sinks);
  c.clustered = rng.Bernoulli(0.3);
  c.with_source = rng.Bernoulli(0.6);
  c.mst_topology = rng.Bernoulli(0.3);
  const double regime_draw = rng.Uniform();
  if (regime_draw < 0.4) {
    c.regime = BoundsRegime::kAchievedWindow;
  } else if (regime_draw < 0.6) {
    c.regime = BoundsRegime::kSteinerOnly;
  } else if (regime_draw < 0.8) {
    c.regime = BoundsRegime::kZeroSkew;
  } else {
    c.regime = BoundsRegime::kInfeasible;
  }
  // Simplex tableaus are dense; cap it to small instances.
  c.options.lp.engine = (c.num_sinks <= 24 && rng.Bernoulli(0.4))
                            ? LpEngine::kSimplex
                            : LpEngine::kInteriorPoint;
  const double strategy_draw = rng.Uniform();
  if (c.num_sinks <= 24 && strategy_draw < 0.3) {
    c.options.strategy = EbfStrategy::kFullRows;
    c.options.use_presolve = rng.Bernoulli(0.5);
  } else if (c.num_sinks <= 32 && strategy_draw < 0.5) {
    c.options.strategy = EbfStrategy::kReducedRows;
  } else {
    c.options.strategy = EbfStrategy::kLazy;
  }
  c.options.use_zero_skew_fast_path = rng.Bernoulli(0.7);
  // Mostly the SoA octant oracle (the default), with AoS-octant and
  // brute-force slices so the sanitizers keep covering the reference
  // paths too. Same three-way split for the NN-merge backend, and a
  // supernodal-vs-simplicial (x factor-jobs) draw for the interior-point
  // Cholesky — all of these are bitwise-equivalence contracts, so any
  // divergence shows up as a validator or cross-check failure downstream.
  const double sep_draw = rng.Uniform();
  c.options.separation = sep_draw < 0.15   ? SeparationMode::kBruteForce
                         : sep_draw < 0.40 ? SeparationMode::kOctant
                                           : SeparationMode::kOctantSoa;
  const double accel_draw = rng.Uniform();
  c.nn_accel = accel_draw < 0.15   ? NnMergeAccel::kScan
               : accel_draw < 0.40 ? NnMergeAccel::kGrid
                                   : NnMergeAccel::kGridSoa;
  c.options.lp.factor_mode = rng.Bernoulli(0.3) ? IpmFactorMode::kSimplicial
                                                : IpmFactorMode::kSupernodal;
  c.options.lp.factor_jobs = rng.Bernoulli(0.3) ? 2 : 1;
  return c;
}

// One random edit for the ECO stream. Edits are drawn so they are always
// well-formed (never rejected by Apply); they may still make the instance
// infeasible, which the session must then *report*, matching the cold side.
EcoEdit DrawEcoEdit(Rng& rng, const EcoSession& session, const BBox& die,
                    double radius) {
  const int m = session.NumSinks();
  const int min_sinks =
      session.Topo().Mode() == RootMode::kFreeSource ? 2 : 1;
  EcoEdit e;
  const double kind_draw = rng.Uniform();
  if (kind_draw < 0.35) {
    e.kind = EcoEditKind::kMoveSink;
    e.sink = rng.UniformInt(0, m - 1);
    e.point = {rng.Uniform(die.Lo().x, die.Hi().x),
               rng.Uniform(die.Lo().y, die.Hi().y)};
  } else if (kind_draw < 0.60) {
    e.kind = EcoEditKind::kSetBounds;
    e.sink = rng.UniformInt(0, m - 1);
    e.lo = rng.Uniform(0.0, 0.8) * radius;
    e.hi = rng.Bernoulli(0.2) ? kLpInf
                              : e.lo + rng.Uniform(0.1, 1.2) * radius;
  } else if (kind_draw < 0.70) {
    e.kind = EcoEditKind::kShiftWindow;
    e.lo = rng.Uniform(-0.1, 0.1) * radius;
    e.hi = e.lo + rng.Uniform(0.0, 0.2) * radius;
    // A shift that would invert some window is rejected as malformed; fall
    // back to a pure relaxation, which is always valid.
    for (const DelayBounds& b : session.Bounds()) {
      if (!std::isfinite(b.hi)) continue;
      if (std::max(0.0, b.lo + e.lo) > b.hi + e.hi) {
        e.lo = 0.0;
        e.hi = 0.05 * radius;
        break;
      }
    }
  } else if (kind_draw < 0.85 || m - 1 < min_sinks) {
    e.kind = EcoEditKind::kAddSink;
    e.point = {rng.Uniform(die.Lo().x, die.Hi().x),
               rng.Uniform(die.Lo().y, die.Hi().y)};
    e.lo = 0.0;
    e.hi = rng.Bernoulli(0.3) ? kLpInf : rng.Uniform(0.8, 1.6) * radius;
  } else {
    e.kind = EcoEditKind::kRemoveSink;
    e.sink = rng.UniformInt(0, m - 1);
  }
  return e;
}

// Streams `c.eco_ops` random edits through an EcoSession seeded with the
// case's instance and cross-checks every incremental solve against
// ColdReferenceSolve — the incremental ≡ cold contract under sanitizers.
std::string RunEcoStream(const CaseConfig& c, const SinkSet& set,
                         const Topology& topo,
                         const std::vector<DelayBounds>& bounds,
                         const BBox& die) {
  EcoOptions opt;
  opt.solve = c.options;
  auto created = EcoSession::Create(set, bounds, topo, opt);
  if (!created.ok()) {
    return "EcoSession::Create: " + created.status().ToString();
  }
  EcoSession& session = **created;
  const double radius = session.InitialRadius();
  Rng rng(c.seed * 0x51f15eed00d5eedULL + 7);
  for (int op = 0; op < c.eco_ops; ++op) {
    const EcoEdit edit = DrawEcoEdit(rng, session, die, radius);
    const std::string where = "eco op " + std::to_string(op + 1) + " (" +
                              EcoEditKindName(edit.kind) + ", tier ";
    auto info = session.Apply(edit);
    if (!info.ok()) {
      return "eco apply " + std::string(EcoEditKindName(edit.kind)) + ": " +
             info.status().ToString();
    }
    const std::string ctx = where + EcoTierName(info->tier) + ")";
    const EbfSolveResult cold = ColdReferenceSolve(session);
    if (info->ok() != cold.ok()) {
      return ctx + ": incremental " + info->status.ToString() +
             " but cold " + cold.status.ToString();
    }
    if (!info->ok()) {
      if (info->status.code() != StatusCode::kInfeasible ||
          cold.status.code() != StatusCode::kInfeasible) {
        return ctx + ": non-infeasible failure (incremental " +
               info->status.ToString() + ", cold " + cold.status.ToString() +
               ")";
      }
      continue;
    }
    const double tol = 1e-5 * std::max(1.0, std::abs(cold.cost));
    if (std::abs(info->cost - cold.cost) > tol) {
      return ctx + ": cost " + std::to_string(info->cost) + " vs cold " +
             std::to_string(cold.cost);
    }
    const Status lengths_ok =
        ValidateEdgeLengths(session.Problem(), session.EdgeLengths());
    if (!lengths_ok.ok()) {
      return ctx + ": ValidateEdgeLengths: " + lengths_ok.ToString();
    }
  }
  return "";
}

// Returns an error description, or the empty string when the case passes.
std::string RunCase(const CaseConfig& c, bool quiet) {
  const BBox die({0.0, 0.0}, {1000.0, 1000.0});
  const SinkSet set =
      c.clustered ? ClusteredSinkSet(c.num_sinks, 4, die, c.seed, c.with_source)
                  : RandomSinkSet(c.num_sinks, die, c.seed, c.with_source);

  const Topology topo =
      c.mst_topology
          ? MstBinaryTopology(set.sinks, set.source)
          : NnMergeTopology(set.sinks, set.source, c.nn_accel);
  const Status topo_ok =
      ValidateTopology(topo, static_cast<int>(set.sinks.size()));
  if (!topo_ok.ok()) return "ValidateTopology: " + topo_ok.ToString();

  // A feasible reference window comes from the bounded-skew baseline on the
  // same topology (its achieved delays are achievable by construction).
  const double radius = Radius(set.sinks, set.source);
  auto base = BoundedSkewOnTopology(topo, set.sinks, set.source, 0.5 * radius);
  if (!base.ok()) return "BoundedSkewOnTopology: " + base.status().ToString();

  EbfProblem prob;
  prob.topo = &topo;
  prob.sinks = set.sinks;
  prob.source = set.source;
  bool expect_feasible = true;
  switch (c.regime) {
    case BoundsRegime::kAchievedWindow:
      prob.bounds.assign(set.sinks.size(),
                         DelayBounds{base->min_delay, base->max_delay});
      break;
    case BoundsRegime::kSteinerOnly:
      prob.bounds.assign(set.sinks.size(), DelayBounds{0.0, kLpInf});
      break;
    case BoundsRegime::kZeroSkew:
      prob.bounds.assign(set.sinks.size(),
                         DelayBounds{base->max_delay, base->max_delay});
      break;
    case BoundsRegime::kInfeasible:
      // No tree can deliver below half the farthest fixed-point distance
      // (Steiner rows force path >= distance), so this window must be
      // reported infeasible, never "solved".
      prob.bounds.assign(set.sinks.size(), DelayBounds{0.0, 0.45 * radius});
      expect_feasible = false;
      break;
  }

  const EbfSolveResult solved = SolveEbf(prob, c.options);
  if (!expect_feasible) {
    if (solved.ok()) return "infeasible window was claimed solved";
    if (solved.status.code() != StatusCode::kInfeasible) {
      return "infeasible window misreported as " + solved.status.ToString();
    }
    if (c.eco_ops > 0) {
      // Infeasible start: the session must report kInfeasible too, and
      // edits may later restore feasibility (the cold-rebuild tier).
      const std::string eco = RunEcoStream(c, set, topo, prob.bounds, die);
      if (!eco.empty()) return eco;
    }
    if (!quiet) std::printf("ok   %s rejected as infeasible\n", Describe(c).c_str());
    return "";
  }
  if (!solved.ok()) return "SolveEbf: " + solved.status.ToString();

  const Status lengths_ok = ValidateEdgeLengths(prob, solved.edge_len);
  if (!lengths_ok.ok()) {
    return "ValidateEdgeLengths: " + lengths_ok.ToString();
  }

  const PlacementRule rule = (c.seed % 2 == 0) ? PlacementRule::kClosestToParent
                                               : PlacementRule::kCenter;
  auto embedding =
      EmbedTree(topo, set.sinks, set.source, solved.edge_len, rule);
  if (!embedding.ok()) return "EmbedTree: " + embedding.status().ToString();

  const Status embed_ok =
      ValidateEmbedding(prob, solved.edge_len, embedding->location);
  if (!embed_ok.ok()) return "ValidateEmbedding: " + embed_ok.ToString();

  if (c.eco_ops > 0) {
    const std::string eco = RunEcoStream(c, set, topo, prob.bounds, die);
    if (!eco.empty()) return eco;
  }

  if (!quiet) {
    std::printf("ok   %s cost=%.1f rows=%d\n", Describe(c).c_str(),
                solved.cost, solved.lp_rows);
  }
  return "";
}

int Run(int argc, const char* const* argv) {
  Result<ArgParser> args = ArgParser::Parse(
      argc, argv,
      {"seeds", "start-seed", "min-sinks", "max-sinks", "jobs", "eco-ops",
       "quiet", "help"});
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 2;
  }
  if (args->Has("help")) {
    std::printf(
        "self_check: randomized LP -> embed pipeline property driver\n"
        "  --seeds N       number of random cases (default 8)\n"
        "  --start-seed S  first seed (default 1)\n"
        "  --min-sinks M   smallest instance (default 4)\n"
        "  --max-sinks M   largest instance (default 40)\n"
        "  --jobs N        run cases on N worker threads (0 = hardware)\n"
        "  --eco-ops N     per case, stream N random ECO edits through an\n"
        "                  EcoSession and cross-check each against a cold\n"
        "                  solve (default 0 = off)\n"
        "  --quiet         only print failures and the summary\n");
    return 0;
  }
  const Result<int> seeds = args->GetIntFlag("seeds", 8, 1);
  const Result<int> start = args->GetIntFlag("start-seed", 1, 0);
  const Result<int> min_sinks = args->GetIntFlag("min-sinks", 4, 2);
  const Result<int> max_sinks = args->GetIntFlag("max-sinks", 40, 2);
  const Result<int> jobs = args->GetJobsFlag(1);
  const Result<int> eco_ops = args->GetIntFlag("eco-ops", 0, 0);
  const bool quiet = args->GetBool("quiet", false);
  for (const Result<int>* flag : {&seeds, &start, &min_sinks, &max_sinks,
                                  &jobs, &eco_ops}) {
    if (!flag->ok()) {
      std::fprintf(stderr, "%s\n", flag->status().ToString().c_str());
      return 2;
    }
  }
  if (*max_sinks < *min_sinks) {
    std::fprintf(stderr, "--max-sinks below --min-sinks\n");
    return 2;
  }

  // With --jobs > 1 the cases run concurrently on the runtime's pool — the
  // designated tsan workload for the whole pipeline. Per-case chatter is
  // suppressed and errors are collected per slot, so output stays in seed
  // order regardless of scheduling.
  std::vector<CaseConfig> cases;
  cases.reserve(static_cast<std::size_t>(*seeds));
  for (int s = 0; s < *seeds; ++s) {
    cases.push_back(DrawCase(static_cast<std::uint64_t>(*start + s),
                             *min_sinks, *max_sinks));
    // Parallel sweeps also parallelize each case's separation, so the tsan
    // lane exercises the octant oracle's bucket fan-out under concurrent
    // solves. Results are worker-count invariant by contract.
    cases.back().options.separation_jobs = *jobs;
    cases.back().eco_ops = *eco_ops;
  }
  std::vector<std::string> errors(cases.size());
  const bool parallel = *jobs > 1;
  ParallelFor(*seeds, *jobs, [&](int s) {
    errors[static_cast<std::size_t>(s)] =
        RunCase(cases[static_cast<std::size_t>(s)], quiet || parallel);
  });

  int failures = 0;
  for (std::size_t s = 0; s < cases.size(); ++s) {
    if (errors[s].empty()) continue;
    ++failures;
    std::fprintf(stderr, "FAIL %s\n     %s\n", Describe(cases[s]).c_str(),
                 errors[s].c_str());
  }
  std::printf("self_check: %d/%d cases passed (%d worker%s)\n",
              *seeds - failures, *seeds, *jobs, *jobs == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lubt

int main(int argc, char** argv) { return lubt::Run(argc, argv); }
